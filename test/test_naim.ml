(* Tests for the NAIM subsystem: the memory accountant, the disk
   repository, and the loader's state machine (pin/release, LRU
   eviction, thresholds, symbol-table compaction, offloading). *)

module Memstats = Cmo_naim.Memstats
module Repository = Cmo_naim.Repository
module Loader = Cmo_naim.Loader
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Size = Cmo_il.Size

(* ---------- Memstats ---------- *)

let test_memstats_charge_release () =
  let m = Memstats.create () in
  Memstats.charge m Memstats.Ir_expanded 100;
  Memstats.charge m Memstats.Global 50;
  Alcotest.(check int) "resident" 150 (Memstats.resident m);
  Memstats.release m Memstats.Ir_expanded 40;
  Alcotest.(check int) "after release" 110 (Memstats.resident m);
  Alcotest.(check int) "category" 60 (Memstats.resident_of m Memstats.Ir_expanded)

let test_memstats_peak () =
  let m = Memstats.create () in
  Memstats.charge m Memstats.Ir_expanded 100;
  Memstats.release m Memstats.Ir_expanded 100;
  Memstats.charge m Memstats.Ir_expanded 30;
  Alcotest.(check int) "peak persists" 100 (Memstats.peak m);
  Memstats.reset_peak m;
  Alcotest.(check int) "peak reset to current" 30 (Memstats.peak m)

let test_memstats_hlo_excludes_llo () =
  let m = Memstats.create () in
  Memstats.charge m Memstats.Ir_expanded 100;
  Memstats.charge m Memstats.Llo 500;
  Alcotest.(check int) "hlo resident" 100 (Memstats.hlo_resident m);
  Alcotest.(check int) "total resident" 600 (Memstats.resident m);
  Alcotest.(check int) "hlo peak" 100 (Memstats.peak_hlo m)

let test_memstats_merge_empty () =
  (* Merging a fresh accountant is a no-op: no residency moves, no
     peak inflation in either direction. *)
  let dst = Memstats.create () in
  Memstats.charge dst Memstats.Ir_expanded 100;
  Memstats.release dst Memstats.Ir_expanded 60;
  Memstats.merge dst (Memstats.create ());
  Alcotest.(check int) "resident unchanged" 40 (Memstats.resident dst);
  Alcotest.(check int) "peak unchanged" 100 (Memstats.peak dst);
  let empty = Memstats.create () in
  Memstats.merge empty (Memstats.create ());
  Alcotest.(check int) "empty into empty" 0 (Memstats.resident empty);
  Alcotest.(check int) "empty peak" 0 (Memstats.peak empty)

let test_memstats_merge_residency () =
  (* The worker's peak is modeled on top of dst's residency at merge
     time; a worker peak smaller than dst's own never lowers it. *)
  let dst = Memstats.create () in
  Memstats.charge dst Memstats.Ir_expanded 100;
  Memstats.release dst Memstats.Ir_expanded 50;
  let src = Memstats.create () in
  Memstats.charge src Memstats.Ir_compacted 30;
  Memstats.release src Memstats.Ir_compacted 30;
  Memstats.merge dst src;
  Alcotest.(check int) "resident sums" 50 (Memstats.resident dst);
  (* dst resident 50 + src peak 30 = 80 < dst's own peak 100 *)
  Alcotest.(check int) "peak stays" 100 (Memstats.peak dst);
  let src2 = Memstats.create () in
  Memstats.charge src2 Memstats.Llo 70;
  Memstats.merge dst src2;
  Alcotest.(check int) "resident includes src2" 120 (Memstats.resident dst);
  (* dst resident 50 + src2 peak 70 = 120 > 100 *)
  Alcotest.(check int) "peak grows" 120 (Memstats.peak dst);
  (* LLO bytes stay out of the HLO series across the merge. *)
  Alcotest.(check int) "hlo peak untouched by llo" 100 (Memstats.peak_hlo dst)

let test_memstats_underflow_rejected () =
  let m = Memstats.create () in
  Memstats.charge m Memstats.Derived 10;
  Alcotest.(check bool) "underflow raises" true
    (try
       Memstats.release m Memstats.Derived 11;
       false
     with Invalid_argument _ -> true)

(* ---------- Repository ---------- *)

let test_repository_memory_roundtrip () =
  let r = Repository.in_memory () in
  let h1 = Repository.store r "hello" in
  let h2 = Repository.store r "world!" in
  Alcotest.(check string) "first" "hello" (Repository.fetch r h1);
  Alcotest.(check string) "second" "world!" (Repository.fetch r h2);
  Alcotest.(check int) "bytes" 11 (Repository.stored_bytes r);
  Alcotest.(check int) "stores" 2 (Repository.stores r);
  Alcotest.(check int) "fetches" 2 (Repository.fetches r)

let test_repository_file_roundtrip () =
  let path = Filename.temp_file "cmo_repo" ".bin" in
  let r = Repository.create ~path in
  Fun.protect
    ~finally:(fun () ->
      Repository.close r;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let h1 = Repository.store r (String.make 1000 'x') in
      let h2 = Repository.store r "abc" in
      Alcotest.(check string) "second" "abc" (Repository.fetch r h2);
      Alcotest.(check int) "first length" 1000
        (String.length (Repository.fetch r h1)))

let test_repository_close_removes_file () =
  let path = Filename.temp_file "cmo_repo" ".bin" in
  let r = Repository.create ~path in
  ignore (Repository.store r "data");
  Repository.close r;
  Alcotest.(check bool) "file removed" false (Sys.file_exists path)

let test_repository_foreign_handle_rejected () =
  let a = Repository.in_memory () in
  let b = Repository.in_memory () in
  let h = Repository.store a "data" in
  Alcotest.(check bool) "foreign handle rejected" true
    (try
       ignore (Repository.fetch b h);
       false
     with Invalid_argument _ -> true)

(* ---------- Loader ---------- *)

(* A module with [n] functions, each with a distinctive body. *)
let make_module ?(fn_blocks = 1) name n =
  let m = Ilmod.create name in
  ignore (Ilmod.add_global m ~name:(name ^ "_g") ~size:8 ~exported:true ());
  for i = 0 to n - 1 do
    let f =
      Func.create
        ~name:(Printf.sprintf "%s_f%d" name i)
        ~arity:1 ~linkage:Func.Exported
    in
    for b = 0 to fn_blocks - 1 do
      let r1 = Func.new_reg f in
      let r2 = Func.new_reg f in
      let block =
        Func.add_block f
          [
            Cmo_il.Instr.Binop
              (Cmo_il.Instr.Mul, r1, Cmo_il.Instr.Reg 0,
               Cmo_il.Instr.Imm (Int64.of_int (i + b + 2)));
            Cmo_il.Instr.Binop
              (Cmo_il.Instr.Add, r2, Cmo_il.Instr.Reg r1, Cmo_il.Instr.Imm 1L);
          ]
          (Cmo_il.Instr.Ret (Some (Cmo_il.Instr.Reg r2)))
      in
      if b = 0 then f.Func.entry <- block.Func.label
    done;
    f.Func.src_lines <- 4;
    Ilmod.add_func m f
  done;
  m

let tiny_config ~machine_memory ?forced_level () =
  {
    Loader.machine_memory;
    ir_threshold = 0.25;
    st_threshold = 0.45;
    offload_threshold = 0.70;
    cache_fraction = 0.30;
    forced_level;
  }

let new_loader ?forced_level ~machine_memory () =
  let mem = Memstats.create () in
  Loader.create (tiny_config ~machine_memory ?forced_level ()) mem

let test_loader_register_and_acquire () =
  let t = new_loader ~machine_memory:(1 lsl 30) () in
  let m = make_module "alpha" 3 in
  Loader.register_module t m;
  Alcotest.(check int) "funcs emptied from module" 0 (List.length m.Ilmod.funcs);
  Alcotest.(check (list string)) "names"
    [ "alpha_f0"; "alpha_f1"; "alpha_f2" ]
    (Loader.func_names t);
  let f = Loader.acquire t "alpha_f1" in
  Alcotest.(check string) "right function" "alpha_f1" f.Func.name;
  Loader.release t "alpha_f1";
  Loader.close t

let test_loader_acquire_unknown () =
  let t = new_loader ~machine_memory:(1 lsl 30) () in
  Alcotest.(check bool) "unknown raises Not_found" true
    (try
       ignore (Loader.acquire t "nope");
       false
     with Not_found -> true);
  Loader.close t

let test_loader_naim_off_keeps_expanded () =
  (* Huge machine: thresholds never trip; everything stays expanded. *)
  let t = new_loader ~machine_memory:(1 lsl 30) () in
  Loader.register_module t (make_module "alpha" 10);
  List.iter
    (fun n -> Loader.with_func t n (fun _ -> ()))
    (Loader.func_names t);
  let s = Loader.stats t in
  Alcotest.(check int) "no compactions" 0 s.Loader.compactions;
  Alcotest.(check int) "all cache hits" s.Loader.acquires s.Loader.cache_hits;
  Alcotest.(check bool) "level off" true (Loader.level t = Loader.Off);
  Loader.close t

let test_loader_compaction_under_pressure () =
  (* Small machine: forced IR compaction evicts cold pools. *)
  let t =
    new_loader ~machine_memory:20_000 ~forced_level:Loader.Ir_compaction ()
  in
  Loader.register_module t (make_module ~fn_blocks:4 "alpha" 20);
  let mem = Loader.memstats t in
  let s = Loader.stats t in
  Alcotest.(check bool) "compactions happened" true (s.Loader.compactions > 0);
  Alcotest.(check bool) "compacted bytes charged" true
    (Memstats.resident_of mem Memstats.Ir_compacted > 0);
  (* Re-acquiring decodes transparently. *)
  let f = Loader.acquire t "alpha_f0" in
  Alcotest.(check string) "decoded fine" "alpha_f0" f.Func.name;
  Alcotest.(check bool) "uncompaction counted" true
    ((Loader.stats t).Loader.uncompactions > 0);
  Loader.release t "alpha_f0";
  Loader.close t

let test_loader_compaction_saves_memory () =
  let measure forced_level =
    let t = new_loader ~machine_memory:20_000 ?forced_level () in
    Loader.register_module t (make_module ~fn_blocks:4 "alpha" 20);
    Loader.unload_all t;
    let resident = Memstats.resident (Loader.memstats t) in
    Loader.close t;
    resident
  in
  let off = measure (Some Loader.Off) in
  let compacted = measure (Some Loader.Ir_compaction) in
  Alcotest.(check bool)
    (Printf.sprintf "compacted %d << expanded %d" compacted off)
    true
    (compacted * 3 < off)

let test_loader_offload_discharges_memory () =
  let t = new_loader ~machine_memory:20_000 ~forced_level:Loader.Offloading () in
  Loader.register_module t (make_module ~fn_blocks:4 "alpha" 20);
  Loader.unload_all t;
  let mem = Loader.memstats t in
  Alcotest.(check int) "no expanded IR" 0
    (Memstats.resident_of mem Memstats.Ir_expanded);
  Alcotest.(check int) "no compacted IR" 0
    (Memstats.resident_of mem Memstats.Ir_compacted);
  Alcotest.(check bool) "offloads counted" true
    ((Loader.stats t).Loader.offloads > 0);
  (* Everything still loads back correctly. *)
  List.iter
    (fun n ->
      Loader.with_func t n (fun f ->
          Alcotest.(check string) "right func back" n f.Func.name))
    (Loader.func_names t);
  Alcotest.(check bool) "repo loads counted" true
    ((Loader.stats t).Loader.repo_loads > 0);
  Loader.close t

let test_loader_roundtrip_preserves_code () =
  let t = new_loader ~machine_memory:20_000 ~forced_level:Loader.Offloading () in
  let original = make_module ~fn_blocks:3 "alpha" 5 in
  let instr_counts =
    List.map (fun f -> (f.Func.name, Func.instr_count f)) original.Ilmod.funcs
  in
  Loader.register_module t original;
  Loader.unload_all t;
  List.iter
    (fun (name, expected) ->
      Loader.with_func t name (fun f ->
          Alcotest.(check int) (name ^ " instrs") expected (Func.instr_count f)))
    instr_counts;
  Loader.close t

let test_loader_pinned_never_evicted () =
  let t = new_loader ~machine_memory:10_000 ~forced_level:Loader.Offloading () in
  Loader.register_module t (make_module ~fn_blocks:4 "alpha" 10);
  let f = Loader.acquire t "alpha_f0" in
  (* Create pressure by touching everything else. *)
  List.iter
    (fun n -> if n <> "alpha_f0" then Loader.with_func t n (fun _ -> ()))
    (Loader.func_names t);
  Loader.unload_all t;
  (* The pinned function must still be the same value, not a re-decode. *)
  let g = Loader.acquire t "alpha_f0" in
  Alcotest.(check bool) "same physical value" true (f == g);
  Loader.release t "alpha_f0";
  Loader.release t "alpha_f0";
  Loader.close t

let test_loader_update_adjusts_accounting () =
  let t = new_loader ~machine_memory:(1 lsl 30) () in
  Loader.register_module t (make_module "alpha" 1);
  let mem = Loader.memstats t in
  let before = Memstats.resident_of mem Memstats.Ir_expanded in
  let f = Loader.acquire t "alpha_f0" in
  (* Grow the function. *)
  let r = Func.new_reg f in
  let b =
    Func.add_block f
      [ Cmo_il.Instr.Move (r, Cmo_il.Instr.Imm 1L) ]
      (Cmo_il.Instr.Ret None)
  in
  ignore b;
  Loader.update t f;
  let after = Memstats.resident_of mem Memstats.Ir_expanded in
  Alcotest.(check bool) "accounting grew" true (after > before);
  Loader.release t "alpha_f0";
  Loader.close t

let test_loader_update_requires_acquired_value () =
  let t = new_loader ~machine_memory:(1 lsl 30) () in
  Loader.register_module t (make_module "alpha" 1);
  let _ = Loader.acquire t "alpha_f0" in
  let impostor = Helpers.make_linear_func "alpha_f0" in
  Alcotest.(check bool) "impostor rejected" true
    (try
       Loader.update t impostor;
       false
     with Invalid_argument _ -> true);
  Loader.release t "alpha_f0";
  Loader.close t

let test_loader_add_remove_func () =
  let t = new_loader ~machine_memory:(1 lsl 30) () in
  Loader.register_module t (make_module "alpha" 2);
  Loader.add_func t ~module_name:"alpha" (Helpers.make_linear_func "clone_1");
  Alcotest.(check (list string)) "clone registered"
    [ "alpha_f0"; "alpha_f1"; "clone_1" ]
    (Loader.func_names t);
  Alcotest.(check string) "clone in module" "alpha"
    (Loader.module_of_func t "clone_1");
  let before = Memstats.resident (Loader.memstats t) in
  Loader.remove_func t "clone_1";
  Alcotest.(check bool) "memory discharged" true
    (Memstats.resident (Loader.memstats t) < before);
  Alcotest.(check (list string)) "clone gone"
    [ "alpha_f0"; "alpha_f1" ]
    (Loader.func_names t);
  Loader.close t

let test_loader_symtab_compaction () =
  let t = new_loader ~machine_memory:20_000 ~forced_level:Loader.St_compaction () in
  Loader.register_module t (make_module ~fn_blocks:4 "alpha" 10);
  Loader.unload_all t;
  let mem = Loader.memstats t in
  Alcotest.(check bool) "symtab compacted" true
    ((Loader.stats t).Loader.symtab_compactions > 0);
  Alcotest.(check int) "no expanded symtab" 0
    (Memstats.resident_of mem Memstats.Symtab_expanded);
  (* Acquiring a routine re-expands the module symbol table. *)
  Loader.with_func t "alpha_f0" (fun _ ->
      Alcotest.(check bool) "symtab expanded while func live" true
        (Memstats.resident_of mem Memstats.Symtab_expanded > 0));
  Loader.close t

let test_loader_dynamic_thresholds () =
  (* Machine sized so that registration crosses the IR threshold. *)
  let t = new_loader ~machine_memory:100_000 () in
  Loader.register_module t (make_module ~fn_blocks:8 "alpha" 30);
  Alcotest.(check bool) "level escalated beyond Off" true
    (Loader.level t <> Loader.Off);
  let s = Loader.stats t in
  Alcotest.(check bool) "evictions happened" true (s.Loader.compactions > 0);
  Loader.close t

let test_loader_extract_modules () =
  let t = new_loader ~machine_memory:20_000 ~forced_level:Loader.Offloading () in
  let original = make_module ~fn_blocks:2 "alpha" 4 in
  let expected = List.map (fun f -> f.Func.name) original.Ilmod.funcs in
  Loader.register_module t original;
  Loader.unload_all t;
  match Loader.extract_modules t with
  | [ m ] ->
    Alcotest.(check string) "module name" "alpha" m.Ilmod.mname;
    Alcotest.(check (list string)) "functions restored in order" expected
      (List.map (fun f -> f.Func.name) m.Ilmod.funcs);
    Alcotest.(check int) "globals restored" 1 (List.length m.Ilmod.globals);
    Loader.close t
  | _ ->
    Loader.close t;
    Alcotest.fail "expected one module"

let test_loader_lru_evicts_coldest () =
  (* Cache budget fits about two pools: the most recently used pool
     must survive each eviction round. *)
  let t = new_loader ~machine_memory:50_000 ~forced_level:Loader.Ir_compaction () in
  Loader.register_module t (make_module ~fn_blocks:4 "alpha" 8);
  (* Touch f7 last so it is the hottest. *)
  List.iter (fun n -> Loader.with_func t n (fun _ -> ())) (Loader.func_names t);
  let hits_before = (Loader.stats t).Loader.cache_hits in
  (* The most recently used function should still be expanded. *)
  Loader.with_func t "alpha_f7" (fun _ -> ());
  let hits_after = (Loader.stats t).Loader.cache_hits in
  Alcotest.(check bool) "MRU stayed expanded (cache hit)" true
    (hits_after > hits_before);
  Loader.close t

let suite =
  [
    ("memstats charge/release", `Quick, test_memstats_charge_release);
    ("memstats peak", `Quick, test_memstats_peak);
    ("memstats hlo vs llo", `Quick, test_memstats_hlo_excludes_llo);
    ("memstats merge empty", `Quick, test_memstats_merge_empty);
    ("memstats merge residency", `Quick, test_memstats_merge_residency);
    ("memstats underflow rejected", `Quick, test_memstats_underflow_rejected);
    ("repository in-memory", `Quick, test_repository_memory_roundtrip);
    ("repository file-backed", `Quick, test_repository_file_roundtrip);
    ("repository close removes file", `Quick, test_repository_close_removes_file);
    ("repository foreign handle", `Quick, test_repository_foreign_handle_rejected);
    ("loader register/acquire", `Quick, test_loader_register_and_acquire);
    ("loader unknown function", `Quick, test_loader_acquire_unknown);
    ("loader NAIM off", `Quick, test_loader_naim_off_keeps_expanded);
    ("loader compacts under pressure", `Quick, test_loader_compaction_under_pressure);
    ("loader compaction saves memory", `Quick, test_loader_compaction_saves_memory);
    ("loader offload discharges memory", `Quick, test_loader_offload_discharges_memory);
    ("loader roundtrip preserves code", `Quick, test_loader_roundtrip_preserves_code);
    ("loader pinned never evicted", `Quick, test_loader_pinned_never_evicted);
    ("loader update accounting", `Quick, test_loader_update_adjusts_accounting);
    ("loader update impostor rejected", `Quick, test_loader_update_requires_acquired_value);
    ("loader add/remove function", `Quick, test_loader_add_remove_func);
    ("loader symtab compaction", `Quick, test_loader_symtab_compaction);
    ("loader dynamic thresholds", `Quick, test_loader_dynamic_thresholds);
    ("loader extract modules", `Quick, test_loader_extract_modules);
    ("loader LRU keeps hot pools", `Quick, test_loader_lru_evicts_coldest);
  ]
