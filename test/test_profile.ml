(* Tests for the profile subsystem: probe insertion, the profile
   database (persistence, merging), training runs, and correlation. *)

module Db = Cmo_profile.Db
module Probe = Cmo_profile.Probe
module Train = Cmo_profile.Train
module Correlate = Cmo_profile.Correlate
module Func = Cmo_il.Func
module Instr = Cmo_il.Instr
module Interp = Cmo_il.Interp

let loop_program =
  {|
  global acc;
  func work(n) {
    var i = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    return acc;
  }
  func rare() { return 999; }
  func main() {
    work(100);
    if (acc < 0) { rare(); }
    return acc;
  }
  |}

let test_instrument_preserves_behaviour () =
  let m = Helpers.compile loop_program in
  let instrumented, _manifest = Probe.instrument [ m ] in
  Helpers.check_same_behaviour "instrumented behaves identically" [ m ]
    instrumented

let test_instrument_does_not_mutate_original () =
  let m = Helpers.compile loop_program in
  let before = Cmo_il.Ilmod.instr_count m in
  let _ = Probe.instrument [ m ] in
  Alcotest.(check int) "original untouched" before (Cmo_il.Ilmod.instr_count m)

let test_instrument_probe_per_block_and_edge () =
  let m = Helpers.compile loop_program in
  let blocks =
    List.fold_left (fun acc f -> acc + List.length f.Func.blocks) 0
      m.Cmo_il.Ilmod.funcs
  in
  let branches =
    List.fold_left
      (fun acc f ->
        acc
        + List.length
            (List.filter
               (fun (b : Func.block) ->
                 match b.Func.term with Instr.Br _ -> true | _ -> false)
               f.Func.blocks))
      0 m.Cmo_il.Ilmod.funcs
  in
  let _, manifest = Probe.instrument [ m ] in
  Alcotest.(check int) "one probe per block plus two per branch"
    (blocks + (2 * branches))
    (Probe.probe_count manifest)

let test_training_counts () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  (* The loop body in [work] runs 100 times. *)
  let work_counts =
    List.filter_map
      (fun (k, v) ->
        match k with Db.Block ("work", _) -> Some v | _ -> None)
      (Db.entries db)
  in
  Alcotest.(check bool) "some block ran 100 times" true
    (List.exists (fun v -> v = 100.0) work_counts);
  (* [rare] never runs. *)
  List.iter
    (fun (k, v) ->
      match k with
      | Db.Block ("rare", _) ->
        Alcotest.(check (float 0.0)) "rare never counted" 0.0 v
      | _ -> ())
    (Db.entries db)

let test_training_accumulates () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  let t1 = Db.total db in
  let _ = Train.run [ m ] db in
  Alcotest.(check (float 0.001)) "second run doubles counts" (2.0 *. t1)
    (Db.total db)

let test_db_save_load () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  let path = Filename.temp_file "cmo_profile" ".db" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Db.save db path;
      let loaded = Db.load path in
      Alcotest.(check int) "same entry count"
        (List.length (Db.entries db))
        (List.length (Db.entries loaded));
      Alcotest.(check (float 0.001)) "same total" (Db.total db) (Db.total loaded))

let test_db_merge () =
  let a = Db.create () in
  let b = Db.create () in
  Db.add a (Db.Fentry "f") 10.0;
  Db.add b (Db.Fentry "f") 5.0;
  Db.add b (Db.Block ("g", 0)) 7.0;
  Db.merge ~into:a b;
  Alcotest.(check (float 0.0)) "merged fentry" 15.0 (Db.get a (Db.Fentry "f"));
  Alcotest.(check (float 0.0)) "merged block" 7.0 (Db.get a (Db.Block ("g", 0)))

let test_db_entries_sorted_deterministic () =
  let a = Db.create () in
  Db.add a (Db.Block ("z", 3)) 1.0;
  Db.add a (Db.Block ("a", 1)) 1.0;
  Db.add a (Db.Fentry "m") 1.0;
  let e1 = Db.entries a in
  let e2 = Db.entries a in
  Alcotest.(check bool) "stable order" true (e1 = e2)

let test_correlate_annotates_blocks () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  let stats = Correlate.annotate db [ m ] in
  Alcotest.(check int) "all functions matched" stats.Correlate.functions
    stats.Correlate.functions_with_profile;
  let work = Option.get (Cmo_il.Ilmod.find_func m "work") in
  let hot =
    List.exists (fun (b : Func.block) -> b.Func.freq >= 100.0) work.Func.blocks
  in
  Alcotest.(check bool) "hot loop annotated" true hot

let test_correlate_call_counts () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  ignore (Correlate.annotate db [ m ]);
  let main = Option.get (Cmo_il.Ilmod.find_func m "main") in
  let counts =
    List.filter_map
      (fun (_, (c : Instr.call)) ->
        if c.Instr.callee = "work" then Some c.Instr.call_count else None)
      (Func.site_calls main)
  in
  Alcotest.(check (list (float 0.0))) "work called once" [ 1.0 ] counts

let test_correlate_stale_profile_graceful () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  (* "New" code the profile has never seen. *)
  let changed =
    Helpers.compile "func brand_new() { return 1; } func main() { return brand_new(); }"
  in
  let stats = Correlate.annotate db [ changed ] in
  (* [main] exists in both versions and may partially match; the new
     function must not. *)
  Alcotest.(check bool) "not everything matched" true
    (stats.Correlate.blocks_matched < stats.Correlate.blocks);
  (* The drift must be *visible*: the profile's keys for functions
     that no longer exist (work, the old main body) are surfaced, not
     silently dropped. *)
  Alcotest.(check bool) "unmatched keys surfaced" true
    (stats.Correlate.unmatched_keys > 0);
  Alcotest.(check bool) "unmatched weight surfaced" true
    (stats.Correlate.unmatched_weight > 0.0);
  let f = Option.get (Cmo_il.Ilmod.find_func changed "brand_new") in
  List.iter
    (fun (b : Func.block) ->
      Alcotest.(check (float 0.0)) "cold blocks" 0.0 b.Func.freq)
    f.Func.blocks;
  (* A fresh profile of the current program has no unmatched weight. *)
  let fresh = Db.create () in
  let _ = Train.run [ changed ] fresh in
  let fresh_stats = Correlate.annotate fresh [ changed ] in
  Alcotest.(check int) "fresh profile: no unmatched keys" 0
    fresh_stats.Correlate.unmatched_keys;
  Alcotest.(check (float 0.0)) "fresh profile: no unmatched weight" 0.0
    fresh_stats.Correlate.unmatched_weight

let test_correlate_clear () =
  let m = Helpers.compile loop_program in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  ignore (Correlate.annotate db [ m ]);
  Correlate.clear [ m ];
  List.iter
    (fun f ->
      List.iter
        (fun (b : Func.block) ->
          Alcotest.(check (float 0.0)) "cleared" 0.0 b.Func.freq)
        f.Func.blocks)
    m.Cmo_il.Ilmod.funcs

let test_correlate_edge_counts () =
  let src =
    {|
    func main() {
      var i = 0;
      var odd = 0;
      while (i < 10) {
        if (i % 2 == 1) { odd = odd + 1; }
        i = i + 1;
      }
      return odd;
    }
    |}
  in
  let m = Helpers.compile src in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  (* Find the if-branch: an edge executed 5 times must exist. *)
  let edges =
    List.filter_map
      (fun (k, v) -> match k with Db.Edge _ -> Some v | _ -> None)
      (Db.entries db)
  in
  Alcotest.(check bool) "some edge ran 5 times" true (List.mem 5.0 edges);
  Alcotest.(check bool) "some edge ran 10 times" true (List.mem 10.0 edges)

let test_record_counters_unknown_probe_ignored () =
  let m = Helpers.compile "func main() { return 0; }" in
  let _, manifest = Probe.instrument [ m ] in
  let db = Db.create () in
  Probe.record_counters manifest [ (9999, 5L) ] db;
  (* The foreign counter contributes nothing; known probes are
     recorded as explicit zeros. *)
  Alcotest.(check (float 0.0)) "no count recorded" 0.0 (Db.total db);
  Alcotest.(check int) "one zero entry per probe"
    (Probe.probe_count manifest)
    (List.length (Db.entries db))

let suite =
  [
    ("instrumentation preserves behaviour", `Quick, test_instrument_preserves_behaviour);
    ("instrumentation copies", `Quick, test_instrument_does_not_mutate_original);
    ("probe placement", `Quick, test_instrument_probe_per_block_and_edge);
    ("training counts match execution", `Quick, test_training_counts);
    ("training accumulates", `Quick, test_training_accumulates);
    ("db save/load", `Quick, test_db_save_load);
    ("db merge", `Quick, test_db_merge);
    ("db deterministic order", `Quick, test_db_entries_sorted_deterministic);
    ("correlate annotates blocks", `Quick, test_correlate_annotates_blocks);
    ("correlate call counts", `Quick, test_correlate_call_counts);
    ("correlate stale profile", `Quick, test_correlate_stale_profile_graceful);
    ("correlate clear", `Quick, test_correlate_clear);
    ("correlate edge counts", `Quick, test_correlate_edge_counts);
    ("unknown probes ignored", `Quick, test_record_counters_unknown_probe_ignored);
  ]
