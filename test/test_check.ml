(* The IL verifier and the differential-test campaign machinery.

   Two halves:
   - unit tests for Ilcheck: hand-built IL breaking each invariant
     class (CFG, def-before-use, counter hygiene, linkage) must be
     flagged with the right function and phase, and sound IL must
     pass — including through the checked pipeline at +O4 +P;
   - mutation tests for the campaign: an intentionally injected
     miscompile must be caught by the differential oracle and
     auto-shrunk to a tiny MiniC reproducer, and an intentionally
     broken transformation must be caught by the verifier. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Genprog = Cmo_workload.Genprog
module Ilcheck = Cmo_check.Ilcheck
module Shrink = Cmo_campaign.Shrink
module Oracle = Cmo_campaign.Oracle
module Corpus = Cmo_campaign.Corpus
module Campaign = Cmo_campaign.Campaign

let check = Alcotest.check
let phase = "test-phase"

(* A function returning [r0 * 2 + r1], structurally sound. *)
let sound () = Helpers.make_linear_func "sound"

let violations ?env f = Ilcheck.check_func ?env ~phase f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has_message sub vs =
  List.exists (fun (v : Ilcheck.violation) -> contains v.Ilcheck.message sub) vs

let test_sound_func_passes () =
  check Alcotest.int "no violations" 0 (List.length (violations (sound ())))

let test_empty_func () =
  let f = Func.create ~name:"empty" ~arity:0 ~linkage:Func.Exported in
  check Alcotest.bool "no blocks flagged" true
    (has_message "no blocks" (violations f))

let test_missing_entry () =
  let f = sound () in
  f.Func.entry <- f.Func.entry + 41;
  check Alcotest.bool "entry flagged" true
    (violations f <> [])

let test_branch_to_missing_label () =
  let f = Func.create ~name:"br" ~arity:1 ~linkage:Func.Exported in
  let missing = Func.new_label f in
  let b = Func.add_block f [] (Instr.Jmp missing) in
  f.Func.entry <- b.Func.label;
  check Alcotest.bool "dangling target flagged" true (violations f <> [])

let test_duplicate_labels () =
  let f = Func.create ~name:"dup" ~arity:0 ~linkage:Func.Exported in
  let b1 = Func.add_block f [] (Instr.Ret None) in
  let b2 = Func.add_block f [] (Instr.Ret None) in
  f.Func.entry <- b1.Func.label;
  (* Force the collision behind the counters' back. *)
  f.Func.blocks <-
    [ b1; { b2 with Func.label = b1.Func.label } ];
  check Alcotest.bool "duplicate label flagged" true (violations f <> [])

let test_register_out_of_range () =
  let f = Func.create ~name:"range" ~arity:1 ~linkage:Func.Exported in
  let b =
    Func.add_block f
      [ Instr.Move (f.Func.next_reg + 7, Instr.Reg 0) ]
      (Instr.Ret None)
  in
  f.Func.entry <- b.Func.label;
  check Alcotest.bool "reg >= next_reg flagged" true (violations f <> [])

let test_use_before_def () =
  let f = Func.create ~name:"ubd" ~arity:0 ~linkage:Func.Exported in
  let r = Func.new_reg f in
  let d = Func.new_reg f in
  let b =
    Func.add_block f
      [ Instr.Move (d, Instr.Reg r) ]  (* r read, never written *)
      (Instr.Ret (Some (Instr.Reg d)))
  in
  f.Func.entry <- b.Func.label;
  check Alcotest.bool "use-before-def flagged" true
    (has_message "before any definition" (violations f))

let test_use_defined_on_one_path_only () =
  (* r is written on the then-branch only; the join reads it.  The
     must-defined dataflow has to catch this even though a definition
     exists somewhere in the function. *)
  let f = Func.create ~name:"join" ~arity:1 ~linkage:Func.Exported in
  let r = Func.new_reg f in
  let join =
    Func.add_block f [] (Instr.Ret (Some (Instr.Reg r)))
  in
  let thenb =
    Func.add_block f [ Instr.Move (r, Instr.Imm 1L) ] (Instr.Jmp join.Func.label)
  in
  let elseb = Func.add_block f [] (Instr.Jmp join.Func.label) in
  let entry =
    Func.add_block f []
      (Instr.Br
         { cond = Instr.Reg 0;
           ifso = thenb.Func.label;
           ifnot = elseb.Func.label })
  in
  f.Func.entry <- entry.Func.label;
  check Alcotest.bool "partial definition flagged" true
    (has_message "before any definition" (violations f));
  (* Defining r on both paths makes the same CFG sound. *)
  elseb.Func.instrs <- [ Instr.Move (r, Instr.Imm 2L) ];
  check Alcotest.int "both paths defined: clean" 0
    (List.length (violations f))

let test_params_defined_on_entry () =
  let f = sound () in
  (* Parameters r0, r1 are read before any write — that is fine. *)
  check Alcotest.int "parameters pre-defined" 0
    (List.length (violations f))

let env_of = Ilcheck.env_of_modules

let call ?dst ~site callee args =
  Instr.Call { Instr.dst; callee; args; site; call_count = 0.0 }

let mk_caller ~callee_arity_used =
  let f = Func.create ~name:"caller" ~arity:0 ~linkage:Func.Exported in
  let d = Func.new_reg f in
  let site = Func.new_site f in
  let args = List.init callee_arity_used (fun _ -> Instr.Imm 1L) in
  let b =
    Func.add_block f
      [ call ~dst:d ~site "callee" args ]
      (Instr.Ret (Some (Instr.Reg d)))
  in
  f.Func.entry <- b.Func.label;
  f

let two_arg_env () =
  { Ilcheck.resolve =
      (function
      | "callee" -> Some (Ilcheck.Func_binding { arity = 2 })
      | _ -> None) }

let test_call_arity_agreement () =
  let good = mk_caller ~callee_arity_used:2 in
  check Alcotest.int "matching arity clean" 0
    (List.length (violations ~env:(two_arg_env ()) good));
  let bad = mk_caller ~callee_arity_used:3 in
  check Alcotest.bool "arity mismatch flagged" true
    (has_message "expects" (violations ~env:(two_arg_env ()) bad))

let test_dangling_callee () =
  let f = mk_caller ~callee_arity_used:2 in
  let empty = { Ilcheck.resolve = (fun _ -> None) } in
  check Alcotest.bool "unresolved callee flagged" true
    (violations ~env:empty f <> []);
  (* No environment at all: linkage checks are skipped. *)
  check Alcotest.int "no env, no linkage check" 0
    (List.length (violations f))

let test_intrinsics_resolve () =
  let f = Func.create ~name:"pr" ~arity:1 ~linkage:Func.Exported in
  let site = Func.new_site f in
  let b =
    Func.add_block f
      [ call ~site "print" [ Instr.Reg 0 ] ]
      (Instr.Ret None)
  in
  f.Func.entry <- b.Func.label;
  let empty = { Ilcheck.resolve = (fun _ -> None) } in
  check Alcotest.int "print resolves without env entry" 0
    (List.length (violations ~env:empty f))

let test_memory_base_must_be_global () =
  let f = Func.create ~name:"mem" ~arity:0 ~linkage:Func.Exported in
  let d = Func.new_reg f in
  let b =
    Func.add_block f
      [ Instr.Load (d, { Instr.base = "nowhere"; index = Instr.Imm 0L }) ]
      (Instr.Ret (Some (Instr.Reg d)))
  in
  f.Func.entry <- b.Func.label;
  let empty = { Ilcheck.resolve = (fun _ -> None) } in
  check Alcotest.bool "unknown global flagged" true
    (violations ~env:empty f <> []);
  let env =
    { Ilcheck.resolve =
        (function
        | "nowhere" -> Some (Ilcheck.Global_binding { size = 4 })
        | _ -> None) }
  in
  check Alcotest.int "known global clean" 0 (List.length (violations ~env f))

let test_check_modules_duplicates () =
  let m1 = Ilmod.create "m1" in
  let m2 = Ilmod.create "m2" in
  Ilmod.add_func m1 (Helpers.make_linear_func "f");
  Ilmod.add_func m2 (Helpers.make_linear_func "f");
  check Alcotest.bool "duplicate exported name flagged" true
    (Ilcheck.check_modules ~phase [ m1; m2 ] <> [])

let test_env_of_modules_snapshot () =
  let src = "global g[4] = {9, 8, 7, 6}; func f(x) { return g[x & 3]; }" in
  let m = Helpers.compile ~name:"snap" src in
  let env = env_of [ m ] in
  (match env.Ilcheck.resolve "snap.f" with
  | Some (Ilcheck.Func_binding { arity }) ->
    check Alcotest.int "snapshot arity" 1 arity
  | _ ->
    (* Lowering may or may not qualify exported names; accept the
       plain name too. *)
    (match env.Ilcheck.resolve "f" with
    | Some (Ilcheck.Func_binding { arity }) ->
      check Alcotest.int "snapshot arity" 1 arity
    | _ -> Alcotest.fail "function missing from snapshot"));
  check Alcotest.bool "global present" true
    (List.exists
       (fun (g : Ilmod.global) ->
         env.Ilcheck.resolve g.Ilmod.gname
         = Some (Ilcheck.Global_binding { size = 4 }))
       m.Ilmod.globals)

let test_violation_rendering () =
  let f = Func.create ~name:"render" ~arity:0 ~linkage:Func.Exported in
  match Ilcheck.check_func_exn ~phase f with
  | () -> Alcotest.fail "expected a violation"
  | exception Ilcheck.Violation (v :: _) ->
    let s = Format.asprintf "%a" Ilcheck.pp_violation v in
    check Alcotest.bool "names the function" true (contains s "render");
    check Alcotest.bool "names the phase" true (contains s phase)
  | exception Ilcheck.Violation [] -> Alcotest.fail "empty violation list"

(* ---------- the checked pipeline ---------- *)

(* The whole pipeline at its most aggressive configuration, with the
   verifier re-run after every phase of every function: the generated
   workload must come through with zero violations (any violation is a
   Compile_error, which [compile] turns into an exception). *)
let test_checked_pipeline_o4p () =
  let cfg = Genprog.fuzz_config ~name:"chk" 42 in
  let sources =
    List.map (fun (name, text) -> { Pipeline.name; text }) (Genprog.generate cfg)
  in
  let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let options = { Options.o4_pbo with Options.check = true } in
  let build = Pipeline.compile ~profile:db options sources in
  let input = Genprog.reference_input cfg in
  let expected = Interp.run ~input (Pipeline.frontend sources) in
  let actual = Pipeline.run ~input build in
  check Alcotest.bool "checked build matches interpreter" true
    (Int64.equal expected.Interp.ret actual.Cmo_vm.Vm.ret
    && expected.Interp.output = actual.Cmo_vm.Vm.output)

(* Checked and unchecked builds must produce identical images — the
   verifier observes, never rewrites. *)
let test_check_does_not_perturb () =
  let cfg = Genprog.fuzz_config ~name:"chk2" 7 in
  let sources =
    List.map (fun (name, text) -> { Pipeline.name; text }) (Genprog.generate cfg)
  in
  let build opts = (Pipeline.compile opts sources).Pipeline.image in
  let plain = build Options.o4 in
  let checked = build { Options.o4 with Options.check = true } in
  check Alcotest.bool "images identical" true (plain = checked)

(* The wired-in verifier must actually catch broken IL: run the HLO
   phase driver over a function that a (simulated) buggy pass just
   broke, with the check hook installed, and expect the Violation. *)
let test_phase_hook_catches_broken_il () =
  let f = Helpers.make_linear_func "victim" in
  (* Simulate pass breakage: retarget the terminator at a label that
     does not exist, as a faulty CFG simplifier could. *)
  (match f.Func.blocks with
  | b :: _ -> b.Func.term <- Instr.Jmp (f.Func.next_label + 3)
  | [] -> assert false);
  let hook ~phase f = Ilcheck.check_func_exn ~phase f in
  match Cmo_hlo.Phase.optimize_func ~check:hook f with
  | _ ->
    (* The scalar passes may not fire on this tiny function (no
       rewrites -> no check); verify directly in that case. *)
    check Alcotest.bool "verifier flags the broken CFG" true
      (violations f <> [])
  | exception Ilcheck.Violation _ -> ()

(* ---------- mutation testing: the oracle catches miscompiles ---------- *)

(* A deliberately planted "optimizer bug": swap the operands of the
   first subtraction in the program.  [a - b] silently becomes
   [b - a] — exactly the shape of bug the differential oracle exists
   to catch and the shrinker to minimize. *)
let swap_first_sub modules =
  let swapped = ref false in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (b : Func.block) ->
              b.Func.instrs <-
                List.map
                  (fun i ->
                    match i with
                    | Instr.Binop (Instr.Sub, d, x, y) when not !swapped ->
                      swapped := true;
                      Instr.Binop (Instr.Sub, d, y, x)
                    | i -> i)
                  b.Func.instrs)
            f.Func.blocks)
        m.Ilmod.funcs)
    modules;
  !swapped

let mutation_input = [| 41L; 5L |]

(* A roomy multi-module subject: the bug lives in lib.diff; everything
   else is shrinkable padding the reducer must strip away. *)
let mutation_subject : Shrink.program =
  [
    ( "main_m",
      "func main() {\n\
      \  var a = arg(0);\n\
      \  var b = arg(1);\n\
      \  var t = noise1(a);\n\
      \  t = t + noise2(b);\n\
      \  print(t);\n\
      \  print(noise3(a, b));\n\
      \  return diff(a, b);\n\
       }\n" );
    ( "lib",
      "global scratch[4] = {0, 0, 0, 0};\n\
       func diff(x, y) { return x - y; }\n\
       func noise1(x) {\n\
      \  var s = 0;\n\
      \  for (var i = 0; i < 4; i = i + 1) { s = s + (x ^ i); }\n\
      \  return s;\n\
       }\n\
       func noise2(x) {\n\
      \  scratch[0] = x * 3;\n\
      \  scratch[1] = x + 7;\n\
      \  return scratch[0] + scratch[1];\n\
       }\n\
       func noise3(x, y) {\n\
      \  var m = x;\n\
      \  if (y > x) { m = y; } else { m = x; }\n\
      \  return m * 2;\n\
       }\n" );
    ( "extra",
      "func unused1(x) { return x + 1; }\n\
       func unused2(x) { return x * x; }\n\
       func unused3(x, y) { return (x << 1) ^ y; }\n" );
  ]

(* The shrink predicate: does the planted bug still change observable
   behaviour?  Total — any failure to compile or run means "not
   interesting". *)
let miscompiles (program : Shrink.program) =
  try
    let compile () =
      List.map
        (fun (name, text) -> Cmo_frontend.Frontend.compile_exn ~module_name:name text)
        program
    in
    let clean = Interp.run ~input:mutation_input (compile ()) in
    let mutated = compile () in
    if not (swap_first_sub mutated) then false
    else
      let broken = Interp.run ~input:mutation_input mutated in
      (not (Int64.equal clean.Interp.ret broken.Interp.ret))
      || clean.Interp.output <> broken.Interp.output
  with _ -> false

let test_mutation_caught_and_shrunk () =
  check Alcotest.bool "planted miscompile is visible" true
    (miscompiles mutation_subject);
  let reproducer, stats =
    Shrink.shrink ~interesting:miscompiles mutation_subject
  in
  check Alcotest.bool "reproducer still miscompiles" true
    (miscompiles reproducer);
  let lines = Shrink.total_lines reproducer in
  check Alcotest.bool
    (Printf.sprintf "reproducer is tiny (%d lines <= 25)" lines)
    true (lines <= 25);
  check Alcotest.bool "shrinking made progress" true
    (stats.Shrink.final_lines < stats.Shrink.start_lines)

(* The same planted bug, caught end-to-end by the Oracle: mutate the
   IL between frontend and interpretation via a custom point... the
   oracle compiles from source, so instead drive Oracle.check on the
   clean program (must agree everywhere) — the mutated path is covered
   by [miscompiles] above and by Campaign below. *)
let test_oracle_agrees_on_clean_program () =
  match Oracle.check ~input:mutation_input ~points:Oracle.smoke_matrix
          mutation_subject with
  | Oracle.Agreed n ->
    check Alcotest.int "all smoke points checked" (List.length Oracle.smoke_matrix) n
  | Oracle.Diverged ds ->
    Alcotest.fail
      (String.concat "; "
         (List.map (fun (d : Oracle.divergence) -> d.Oracle.point ^ ": " ^ d.Oracle.detail) ds))
  | Oracle.Skipped why -> Alcotest.fail ("unexpected skip: " ^ why)

let test_oracle_skips_broken_reference () =
  match Oracle.check ~points:Oracle.smoke_matrix [ ("bad", "func main( {") ] with
  | Oracle.Skipped _ -> ()
  | Oracle.Agreed _ | Oracle.Diverged _ ->
    Alcotest.fail "non-compiling program must be Skipped"

let test_oracle_full_matrix_shape () =
  check Alcotest.int "full matrix size" 12 (List.length Oracle.full_matrix);
  check Alcotest.int "smoke matrix size" 5 (List.length Oracle.smoke_matrix);
  let labels = List.map (fun (p : Oracle.point) -> p.Oracle.label) Oracle.full_matrix in
  check Alcotest.int "labels unique" (List.length labels)
    (List.length (List.sort_uniq compare labels))

(* ---------- shrink unit behaviour ---------- *)

let test_shrink_generic_predicate () =
  let program =
    [
      ("m1", "junk line 1\nNEEDLE\njunk line 2\njunk line 3\n");
      ("m2", "more junk\nand more\n");
    ]
  in
  let interesting p =
    List.exists (fun (_, text) -> contains text "NEEDLE") p
  in
  let reduced, stats = Shrink.shrink ~interesting program in
  check Alcotest.bool "still interesting" true (interesting reduced);
  check Alcotest.int "reduced to the needle alone" 1
    (Shrink.total_lines reduced);
  check Alcotest.bool "spent candidates" true (stats.Shrink.candidates > 0)

let test_shrink_rejects_uninteresting_input () =
  match Shrink.shrink ~interesting:(fun _ -> false) [ ("m", "x\n") ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------- corpus persistence ---------- *)

let with_temp_dir f = Helpers.with_dir ~prefix:"cmo-test-corpus" f

let test_corpus_roundtrip () =
  let multi =
    [ ("main_m", "func main() { return lib_f(3); }\n");
      ("lib", "func lib_f(x) { return x * 2; }\n") ]
  in
  let parsed = Corpus.parse ~default_name:"d" (Corpus.render multi) in
  check Alcotest.(list (pair string string)) "multi-module roundtrip" multi parsed;
  let single = [ ("solo", "func main() { return 7; }\n") ] in
  let rendered = Corpus.render single in
  check Alcotest.bool "single module needs no marker" false
    (contains rendered Corpus.marker);
  check Alcotest.(list (pair string string)) "single-module roundtrip"
    [ ("solo", "func main() { return 7; }\n") ]
    (Corpus.parse ~default_name:"solo" rendered)

let test_corpus_save_load () =
  with_temp_dir @@ fun dir ->
  let program = [ ("m", "func main() { return 1; }\n") ] in
  let p1 = Corpus.save ~dir ~name:"case" program in
  let p2 = Corpus.save ~dir ~name:"case" program in
  check Alcotest.bool "uniquified paths differ" true (p1 <> p2);
  let entries = Corpus.load_dir dir in
  check Alcotest.int "both entries load" 2 (List.length entries);
  List.iter
    (fun (_, loaded) ->
      check Alcotest.(list (pair string string)) "contents survive"
        [ ("case", "func main() { return 1; }\n") ]
        (List.map (fun (_, text) -> ("case", text)) loaded))
    entries

let test_corpus_load_missing_dir () =
  check Alcotest.int "missing dir loads empty" 0
    (List.length (Corpus.load_dir "/nonexistent/cmo-corpus"))

(* ---------- the campaign driver ---------- *)

let test_campaign_clean_run () =
  (* Two seeds against the two cheapest points: with no compiler bug
     planted, the campaign must come back empty-handed. *)
  let points =
    List.filter
      (fun (p : Oracle.point) ->
        p.Oracle.options.Options.level <> Options.O4 || not p.Oracle.warm)
      Oracle.smoke_matrix
  in
  let r = Campaign.run ~points ~seed:3 ~count:2 () in
  check Alcotest.int "two programs" 2 r.Campaign.programs;
  check Alcotest.int "no findings" 0 (List.length r.Campaign.findings);
  check Alcotest.int "nothing skipped" 0 r.Campaign.skipped;
  check Alcotest.bool "points were exercised" true (r.Campaign.points_checked > 0);
  (* The report renders. *)
  check Alcotest.bool "report renders" true
    (String.length (Format.asprintf "%a" Campaign.pp_result r) > 0)

let suite =
  [
    Alcotest.test_case "sound function passes" `Quick test_sound_func_passes;
    Alcotest.test_case "empty function" `Quick test_empty_func;
    Alcotest.test_case "missing entry" `Quick test_missing_entry;
    Alcotest.test_case "branch to missing label" `Quick
      test_branch_to_missing_label;
    Alcotest.test_case "duplicate labels" `Quick test_duplicate_labels;
    Alcotest.test_case "register out of range" `Quick
      test_register_out_of_range;
    Alcotest.test_case "use before def" `Quick test_use_before_def;
    Alcotest.test_case "def on one path only" `Quick
      test_use_defined_on_one_path_only;
    Alcotest.test_case "params defined on entry" `Quick
      test_params_defined_on_entry;
    Alcotest.test_case "call arity agreement" `Quick test_call_arity_agreement;
    Alcotest.test_case "dangling callee" `Quick test_dangling_callee;
    Alcotest.test_case "intrinsics resolve" `Quick test_intrinsics_resolve;
    Alcotest.test_case "memory base must be a global" `Quick
      test_memory_base_must_be_global;
    Alcotest.test_case "check_modules catches duplicates" `Quick
      test_check_modules_duplicates;
    Alcotest.test_case "env_of_modules snapshots" `Quick
      test_env_of_modules_snapshot;
    Alcotest.test_case "violation rendering" `Quick test_violation_rendering;
    Alcotest.test_case "checked pipeline at O4+P" `Quick
      test_checked_pipeline_o4p;
    Alcotest.test_case "check does not perturb codegen" `Quick
      test_check_does_not_perturb;
    Alcotest.test_case "phase hook catches broken IL" `Quick
      test_phase_hook_catches_broken_il;
    Alcotest.test_case "planted miscompile caught and shrunk" `Quick
      test_mutation_caught_and_shrunk;
    Alcotest.test_case "oracle agrees on clean program" `Quick
      test_oracle_agrees_on_clean_program;
    Alcotest.test_case "oracle skips broken reference" `Quick
      test_oracle_skips_broken_reference;
    Alcotest.test_case "oracle matrix shape" `Quick test_oracle_full_matrix_shape;
    Alcotest.test_case "shrink: generic predicate" `Quick
      test_shrink_generic_predicate;
    Alcotest.test_case "shrink: rejects uninteresting input" `Quick
      test_shrink_rejects_uninteresting_input;
    Alcotest.test_case "corpus roundtrip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus save/load" `Quick test_corpus_save_load;
    Alcotest.test_case "corpus missing dir" `Quick test_corpus_load_missing_dir;
    Alcotest.test_case "campaign clean run" `Quick test_campaign_clean_run;
  ]
