let () =
  Alcotest.run "cmo"
    [
      ("support", Test_support.suite);
      ("obs", Test_obs.suite);
      ("il", Test_il.suite);
      ("frontend", Test_frontend.suite);
      ("profile", Test_profile.suite);
      ("ingest", Test_ingest.suite);
      ("cohort", Test_cohort.suite);
      ("naim", Test_naim.suite);
      ("hlo", Test_hlo.suite);
      ("llo", Test_llo.suite);
      ("link", Test_link.suite);
      ("driver", Test_driver.suite);
      ("cache", Test_cache.suite);
      ("workload", Test_workload.suite);
      ("parallel", Test_parallel.suite);
      ("check", Test_check.suite);
      ("corpus", Test_corpus.suite);
      ("fuzz", Test_fuzz.suite);
      ("misc", Test_misc.suite);
      ("fault", Test_fault.suite);
      ("server", Test_server.suite);
      ("dist", Test_dist.suite);
    ]
