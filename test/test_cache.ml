(* The artifact-cache subsystem: fingerprints, the on-disk store, the
   invalidation-closure analysis, and — the load-bearing part — the
   differential guarantee that builds through the cache are
   bit-identical to builds without it, whatever was or wasn't
   cached. *)

module Fingerprint = Cmo_support.Fingerprint
module Store = Cmo_cache.Store
module Invalidate = Cmo_cache.Invalidate
module Funcodec = Cmo_cache.Funcodec
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp
module Phase = Cmo_hlo.Phase
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Buildsys = Cmo_driver.Buildsys
module Vm = Cmo_vm.Vm

(* ---------- scaffolding ---------- *)

let remove_tree = Helpers.remove_tree
let with_store_dir f = Helpers.with_dir ~prefix:"cmo_cache" f

let with_store ?capacity f =
  with_store_dir (fun dir ->
      let store = Store.open_ ?capacity ~dir () in
      Fun.protect ~finally:(fun () -> Store.close store) (fun () -> f store))

(* A four-module application that splits into two weakly-connected
   components of the module graph:

   - [mod_a] (main) calls into [mod_b] — the live component;
   - [mod_c] (exported [report]) calls into [mod_d] and shares the
     [tally] global with it — exported library code no call reaches,
     kept by IPA because [report] and [pack] are roots.

   [kb] and [kd] are editable constants standing in for source
   changes local to one component. *)
let app ?(kb = 3) ?(kd = 10) () : Pipeline.source list =
  [
    {
      Pipeline.name = "mod_a";
      text =
        {|
        func main() {
          var n = 25;
          var s = 0;
          var i = 0;
          while (i < n) { s = s + mix(i, s); i = i + 1; }
          print(s);
          return s & 255;
        }
        |};
    };
    {
      Pipeline.name = "mod_b";
      text =
        Printf.sprintf
          {|
          static func twist(v) { return v * %d + 1; }
          func mix(x, seed) { return (seed / 3) + twist(x); }
          |}
          kb;
    };
    {
      Pipeline.name = "mod_c";
      text =
        {|
        extern global tally;
        func report(v) { tally = tally + pack(v); return tally; }
        |};
    };
    {
      Pipeline.name = "mod_d";
      text =
        Printf.sprintf
          {|
          global tally = 0;
          func pack(v) { return v * %d; }
          |}
          kd;
    };
  ]

let interp_reference sources =
  Interp.run
    (List.map
       (fun { Pipeline.name; text } -> Helpers.compile ~name text)
       sources)

let image (build : Pipeline.build) = build.Pipeline.image

let check_same_image msg a b =
  Alcotest.(check bool) (msg ^ ": code") true
    (a.Cmo_link.Image.code = b.Cmo_link.Image.code);
  Alcotest.(check bool) (msg ^ ": data/symbols") true
    (a.Cmo_link.Image.data_init = b.Cmo_link.Image.data_init
    && a.Cmo_link.Image.funcs = b.Cmo_link.Image.funcs
    && a.Cmo_link.Image.globals = b.Cmo_link.Image.globals)

let cache_usage (build : Pipeline.build) =
  match build.Pipeline.report.Pipeline.cache with
  | Some c -> c
  | None -> Alcotest.fail "expected a cache-usage report"

(* ---------- fingerprints ---------- *)

let test_fingerprint_basics () =
  let k = Fingerprint.of_strings [ "alpha"; "beta" ] in
  Alcotest.(check string) "deterministic" k
    (Fingerprint.of_strings [ "alpha"; "beta" ]);
  Alcotest.(check int) "128-bit hex" 32 (String.length k);
  Alcotest.(check bool) "content-sensitive" true
    (k <> Fingerprint.of_strings [ "alpha"; "gamma" ]);
  Alcotest.(check bool) "order-sensitive" true
    (k <> Fingerprint.of_strings [ "beta"; "alpha" ]);
  Alcotest.(check bool) "framing keeps concatenation injective" true
    (Fingerprint.of_strings [ "ab"; "c" ]
    <> Fingerprint.of_strings [ "a"; "bc" ]);
  let one = Fingerprint.(to_hex (add_string empty "x")) in
  Alcotest.(check int) "64-bit hex" 16 (String.length one)

(* ---------- the store ---------- *)

let test_store_roundtrip_and_counters () =
  with_store (fun store ->
      Alcotest.(check (option string)) "empty store misses" None
        (Store.find store "k1");
      Store.add store "k1" "payload-one";
      Alcotest.(check (option string)) "hit after add" (Some "payload-one")
        (Store.find store "k1");
      let s = Store.stats store in
      Alcotest.(check int) "one hit" 1 s.Store.hits;
      Alcotest.(check int) "one miss" 1 s.Store.misses;
      Alcotest.(check int) "one store" 1 s.Store.stores;
      Alcotest.(check int) "one entry" 1 s.Store.entries;
      Alcotest.(check int) "live bytes" (String.length "payload-one")
        s.Store.live_bytes)

let test_store_persistence () =
  with_store_dir (fun dir ->
      let store = Store.open_ ~dir () in
      Store.add store "k1" "first";
      Store.add store "k2" "second";
      ignore (Store.find store "k1");
      Store.close store;
      let store = Store.open_ ~dir () in
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          Alcotest.(check (option string)) "k1 survives reopen" (Some "first")
            (Store.find store "k1");
          Alcotest.(check (option string)) "k2 survives reopen" (Some "second")
            (Store.find store "k2");
          let s = Store.stats store in
          Alcotest.(check int) "hit counter persisted (1 old + 2 new)" 3
            s.Store.hits;
          Alcotest.(check int) "stores persisted" 2 s.Store.stores))

let test_store_replace () =
  with_store (fun store ->
      Store.add store "k" "old-bytes";
      Store.add store "k" "new";
      Alcotest.(check (option string)) "latest wins" (Some "new")
        (Store.find store "k");
      let s = Store.stats store in
      Alcotest.(check int) "one entry" 1 s.Store.entries;
      Alcotest.(check int) "live bytes are the replacement's" 3
        s.Store.live_bytes)

let test_store_lru_eviction () =
  with_store ~capacity:100 (fun store ->
      let blob c = String.make 60 c in
      Store.add store "a" (blob 'a');
      Store.add store "b" (blob 'b');
      (* 120 live > 100: the LRU entry (a) must have gone. *)
      Alcotest.(check (option string)) "a evicted" None (Store.find store "a");
      Alcotest.(check (option string)) "b kept" (Some (blob 'b'))
        (Store.find store "b");
      (* Touch b, add c: b is now the most recent, so c's arrival
         evicts nothing else than... b and c are 120 again, and b was
         touched after a died; the victim is the older of b/c. *)
      Store.add store "c" (blob 'c');
      Alcotest.(check (option string)) "b evicted as LRU" None
        (Store.find store "b");
      Alcotest.(check (option string)) "c kept" (Some (blob 'c'))
        (Store.find store "c");
      let s = Store.stats store in
      Alcotest.(check int) "two evictions" 2 s.Store.evictions;
      (* A single artifact over capacity is kept rather than thrashed. *)
      Store.add store "huge" (String.make 500 'h');
      Alcotest.(check (option string)) "oversized artifact kept"
        (Some (String.make 500 'h'))
        (Store.find store "huge");
      Alcotest.(check int) "never evicts below one entry" 1
        (Store.stats store).Store.entries)

let test_store_clear () =
  with_store (fun store ->
      Store.add store "k" "v";
      ignore (Store.find store "k");
      Store.clear store;
      let s = Store.stats store in
      Alcotest.(check int) "no entries" 0 s.Store.entries;
      Alcotest.(check int) "counters reset" 0
        (s.Store.hits + s.Store.misses + s.Store.stores);
      Alcotest.(check (option string)) "lookup misses" None
        (Store.find store "k"))

let test_store_corrupt_index_tolerated () =
  with_store_dir (fun dir ->
      let store = Store.open_ ~dir () in
      Store.add store "k" "precious";
      Store.close store;
      let oc = open_out_bin (Filename.concat dir "index") in
      output_string oc "this is not an index";
      close_out oc;
      let store = Store.open_ ~dir () in
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          Alcotest.(check int) "reads as empty" 0
            (Store.stats store).Store.entries;
          Alcotest.(check (option string)) "lookup degrades to miss" None
            (Store.find store "k");
          Store.add store "k2" "fresh";
          Alcotest.(check (option string)) "store still works" (Some "fresh")
            (Store.find store "k2")))

(* ---------- the function codec ---------- *)

let test_funcodec_roundtrip_and_overwrite () =
  let f = Helpers.make_linear_func "fn" in
  let bytes = Funcodec.encode f in
  let g = Funcodec.decode bytes in
  Alcotest.(check string) "name" f.Func.name g.Func.name;
  Alcotest.(check int) "arity" f.Func.arity g.Func.arity;
  Alcotest.(check string) "identical functions encode identically" bytes
    (Funcodec.encode g);
  (* Overwrite a sibling in place, as the phase cache does to a
     loader-acquired function. *)
  let dst = Func.create ~name:"fn" ~arity:2 ~linkage:Func.Exported in
  Funcodec.overwrite ~dst g;
  Alcotest.(check string) "overwrite reproduces the body" bytes
    (Funcodec.encode dst)

(* ---------- invalidation closures ---------- *)

let frontend sources = Pipeline.frontend sources

let test_invalidate_components () =
  let part = Invalidate.compute (frontend (app ())) in
  Alcotest.(check (list (list string))) "two components"
    [ [ "mod_a"; "mod_b" ]; [ "mod_c"; "mod_d" ] ]
    (Invalidate.components part);
  Alcotest.(check (list string)) "closure of mod_d" [ "mod_c"; "mod_d" ]
    (Invalidate.closure part ~changed:[ "mod_d" ]);
  Alcotest.(check (list string)) "closure of mod_b" [ "mod_a"; "mod_b" ]
    (Invalidate.closure part ~changed:[ "mod_b" ]);
  Alcotest.(check (list string)) "closure of both"
    [ "mod_a"; "mod_b"; "mod_c"; "mod_d" ]
    (Invalidate.closure part ~changed:[ "mod_b"; "mod_d" ]);
  Alcotest.(check bool) "tally couples mod_c and mod_d" true
    (List.mem "tally" (Invalidate.global_refs part "mod_d"))

let test_invalidate_global_only_coupling () =
  (* No call edge between the two modules — only the shared global
     must merge them, because IPA folds never-stored globals. *)
  let sources =
    [
      { Pipeline.name = "g1"; text = "global shared = 5; func main() { return shared; }" };
      { Pipeline.name = "g2"; text = "extern global shared; func peek() { return shared + 1; }" };
    ]
  in
  let part = Invalidate.compute (frontend sources) in
  Alcotest.(check (list (list string))) "one component" [ [ "g1"; "g2" ] ]
    (Invalidate.components part)

(* ---------- differential: cached builds are bit-identical ---------- *)

let test_warm_rebuild_identical_and_free () =
  with_store (fun store ->
      let sources = app () in
      let cold = Pipeline.compile ~cache:store Options.o4 sources in
      let hlo_before = Phase.funcs_processed () in
      let warm = Pipeline.compile ~cache:store Options.o4 sources in
      Alcotest.(check int) "zero HLO phase work when warm" 0
        (Phase.funcs_processed () - hlo_before);
      Alcotest.(check bool) "HLO skipped entirely" true
        (warm.Pipeline.report.Pipeline.hlo = None);
      let usage = cache_usage warm in
      Alcotest.(check int) "no module misses" 0 usage.Pipeline.misses;
      Alcotest.(check (list string)) "all four modules from the store"
        [ "mod_a"; "mod_b"; "mod_c"; "mod_d" ]
        (List.sort compare usage.Pipeline.cmo_cached);
      Alcotest.(check (list string)) "nothing re-optimized" []
        usage.Pipeline.cmo_reoptimized;
      check_same_image "warm = cold" (image cold) (image warm);
      let expected = interp_reference sources in
      let o = Pipeline.run warm in
      Alcotest.(check int64) "warm build runs right" expected.Interp.ret
        o.Vm.ret;
      Alcotest.(check (list int64)) "warm build prints right"
        expected.Interp.output o.Vm.output)

let test_warm_rebuild_identical_under_pbo () =
  (* +P disables partial reuse (cloning budgets are program-wide) but
     whole-set reuse must still hit and stay bit-identical. *)
  with_store (fun store ->
      let sources = app () in
      let db = Pipeline.train sources in
      let cold = Pipeline.compile ~profile:db ~cache:store Options.o4_pbo sources in
      let hlo_before = Phase.funcs_processed () in
      let warm = Pipeline.compile ~profile:db ~cache:store Options.o4_pbo sources in
      Alcotest.(check int) "zero HLO phase work when warm" 0
        (Phase.funcs_processed () - hlo_before);
      check_same_image "warm = cold (+O4 +P)" (image cold) (image warm);
      let uncached = Pipeline.compile ~profile:db Options.o4_pbo sources in
      check_same_image "cached = uncached (+O4 +P)" (image uncached)
        (image warm))

let test_one_module_edit_reoptimizes_closure_only () =
  with_store (fun store ->
      ignore (Pipeline.compile ~cache:store Options.o4 (app ()));
      (* Edit the dead-library component: only {mod_c, mod_d} may be
         re-optimized, and the image must match a fresh uncached
         compile of the edited program. *)
      let edited = app ~kd:77 () in
      let incr = Pipeline.compile ~cache:store Options.o4 edited in
      let usage = cache_usage incr in
      Alcotest.(check (list string)) "closure re-optimized"
        [ "mod_c"; "mod_d" ]
        (List.sort compare usage.Pipeline.cmo_reoptimized);
      Alcotest.(check (list string)) "live component untouched"
        [ "mod_a"; "mod_b" ]
        (List.sort compare usage.Pipeline.cmo_cached);
      let fresh = Pipeline.compile Options.o4 edited in
      check_same_image "incremental = fresh" (image fresh) (image incr);
      (* Now edit the live component; behaviour must track the edit. *)
      let edited = app ~kd:77 ~kb:9 () in
      let incr = Pipeline.compile ~cache:store Options.o4 edited in
      let usage = cache_usage incr in
      Alcotest.(check (list string)) "live closure re-optimized"
        [ "mod_a"; "mod_b" ]
        (List.sort compare usage.Pipeline.cmo_reoptimized);
      let fresh = Pipeline.compile Options.o4 edited in
      check_same_image "incremental = fresh (live edit)" (image fresh)
        (image incr);
      let expected = interp_reference edited in
      let o = Pipeline.run incr in
      Alcotest.(check (list int64)) "edited behaviour tracks the edit"
        expected.Interp.output o.Vm.output)

let test_edit_revert_full_hit () =
  with_store (fun store ->
      let original = Pipeline.compile ~cache:store Options.o4 (app ()) in
      ignore (Pipeline.compile ~cache:store Options.o4 (app ~kb:9 ()));
      let reverted = Pipeline.compile ~cache:store Options.o4 (app ()) in
      Alcotest.(check (list string)) "revert is a full hit" []
        (cache_usage reverted).Pipeline.cmo_reoptimized;
      check_same_image "revert = original" (image original) (image reverted))

let test_cache_usage_job_invariant () =
  (* The usage report — hit/miss traffic included — is part of the
     deterministic build output: a worker pool must produce the same
     accounting as the sequential oracle, cold, warm, and across an
     edit. *)
  let snapshot (u : Pipeline.cache_usage) =
    ( u.Pipeline.hits,
      u.Pipeline.misses,
      List.sort compare u.Pipeline.cmo_cached,
      List.sort compare u.Pipeline.cmo_reoptimized )
  in
  let lifecycle jobs =
    with_store (fun store ->
        let build sources =
          snapshot
            (cache_usage
               (Pipeline.compile ~cache:store
                  { Options.o4 with Options.jobs }
                  sources))
        in
        [ build (app ()); build (app ()); build (app ~kd:77 ()) ])
  in
  let seq = lifecycle 1 and par = lifecycle 4 in
  List.iteri
    (fun i (s, p) ->
      let stage = List.nth [ "cold"; "warm"; "edited" ] i in
      let pp (h, m, c, r) =
        Printf.sprintf "hits=%d misses=%d cached=[%s] reopt=[%s]" h m
          (String.concat "," c) (String.concat "," r)
      in
      Alcotest.(check string)
        (Printf.sprintf "%s usage: j=4 matches j=1" stage)
        (pp s) (pp p))
    (List.combine seq par)

let test_buildsys_warm_build_skips_hlo () =
  (* The acceptance criterion end to end: a make-style null rebuild
     through Buildsys performs zero HLO phase work yet produces the
     same image. *)
  let dir = Filename.temp_file "cmo_ws_cache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      let ws = Buildsys.create ~dir () in
      let sources = app () in
      let first = Buildsys.build ws Options.o4 sources in
      let hlo_before = Phase.funcs_processed () in
      let second = Buildsys.build ws Options.o4 sources in
      Alcotest.(check int) "null rebuild: zero HLO work" 0
        (Phase.funcs_processed () - hlo_before);
      Alcotest.(check int) "null rebuild: no frontend work" 0
        (List.length second.Buildsys.recompiled);
      check_same_image "null rebuild image"
        (image first.Buildsys.build)
        (image second.Buildsys.build);
      (* clean wipes the cache directory too. *)
      Buildsys.clean ws;
      Alcotest.(check bool) "clean removed the cache dir" false
        (Sys.file_exists (Buildsys.cache_dir ws)))

(* ---------- property: random edit histories never go stale ---------- *)

let edit_history_arb =
  (* A history is a sequence of (which constant, new value) edits. *)
  QCheck.make
    ~print:(fun h ->
      String.concat ";"
        (List.map (fun (w, v) -> Printf.sprintf "%c=%d" w v) h))
    QCheck.Gen.(
      list_size (int_range 1 4)
        (pair (map (fun b -> if b then 'b' else 'd') bool) (int_range 1 50)))

let test_random_edits_never_stale =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random edit histories: cached = uncached"
       ~count:12 edit_history_arb (fun history ->
         with_store (fun store ->
             let kb = ref 3 and kd = ref 10 in
             ignore (Pipeline.compile ~cache:store Options.o4 (app ()));
             List.for_all
               (fun (which, v) ->
                 Printf.printf "edit %c=%d\n%!" which v;
                 if which = 'b' then kb := v else kd := v;
                 let sources = app ~kb:!kb ~kd:!kd () in
                 let cached = Pipeline.compile ~cache:store Options.o4 sources in
                 let fresh = Pipeline.compile Options.o4 sources in
                 (image cached).Cmo_link.Image.code
                 = (image fresh).Cmo_link.Image.code
                 && (Pipeline.run ~fuel:100_000_000 cached).Vm.output
                    = (Pipeline.run ~fuel:100_000_000 fresh).Vm.output)
               history)))

let suite =
  [
    ("fingerprint basics", `Quick, test_fingerprint_basics);
    ("store roundtrip/counters", `Quick, test_store_roundtrip_and_counters);
    ("store persistence", `Quick, test_store_persistence);
    ("store replace", `Quick, test_store_replace);
    ("store LRU eviction", `Quick, test_store_lru_eviction);
    ("store clear", `Quick, test_store_clear);
    ("store corrupt index", `Quick, test_store_corrupt_index_tolerated);
    ("funcodec roundtrip", `Quick, test_funcodec_roundtrip_and_overwrite);
    ("invalidate components", `Quick, test_invalidate_components);
    ("invalidate global coupling", `Quick, test_invalidate_global_only_coupling);
    ("warm rebuild identical+free", `Quick, test_warm_rebuild_identical_and_free);
    ("warm rebuild under +P", `Quick, test_warm_rebuild_identical_under_pbo);
    ("one-module edit closure", `Quick, test_one_module_edit_reoptimizes_closure_only);
    ("edit then revert", `Quick, test_edit_revert_full_hit);
    ("cache usage job-invariant", `Quick, test_cache_usage_job_invariant);
    ("buildsys warm build", `Quick, test_buildsys_warm_build_skips_hlo);
    test_random_edits_never_stale;
  ]
