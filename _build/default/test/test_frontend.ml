(* Tests for the MiniC frontend: lexer, parser, sema, lowering.  The
   lowering tests execute via the reference interpreter to check
   source-level semantics end to end. *)

module Lexer = Cmo_frontend.Lexer
module Parser = Cmo_frontend.Parser
module Sema = Cmo_frontend.Sema
module Ast = Cmo_frontend.Ast
module Frontend = Cmo_frontend.Frontend
module Verify = Cmo_il.Verify
module Func = Cmo_il.Func
module Interp = Cmo_il.Interp

let ret src = (Helpers.run_main src).Interp.ret

let output src = (Helpers.run_main src).Interp.output

(* ---------- Lexer ---------- *)

let test_lex_tokens () =
  let toks = Lexer.tokenize "func f(a) { return a + 41; }" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  Alcotest.(check int) "token count" 13 (List.length kinds);
  Alcotest.(check bool) "starts with func" true (List.hd kinds = Lexer.KW_FUNC)

let test_lex_comments_skipped () =
  let toks = Lexer.tokenize "// a comment\nfunc // another\nmain" in
  Alcotest.(check int) "three tokens with EOF" 3 (List.length toks)

let test_lex_line_numbers () =
  let toks = Lexer.tokenize "func\n\nmain" in
  let main_tok = List.nth toks 1 in
  Alcotest.(check int) "line tracked" 3 main_tok.Lexer.pos.Ast.line

let test_lex_two_char_operators () =
  let toks = Lexer.tokenize "== != <= >= << >> && ||" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  Alcotest.(check bool) "all recognized" true
    (kinds
    = [
        Lexer.EQ; Lexer.NE; Lexer.LE; Lexer.GE; Lexer.SHL; Lexer.SHR;
        Lexer.AMPAMP; Lexer.PIPEPIPE; Lexer.EOF;
      ])

let test_lex_illegal_char () =
  Alcotest.(check bool) "illegal char raises" true
    (try
       ignore (Lexer.tokenize "func @");
       false
     with Lexer.Lex_error _ -> true)

(* ---------- Parser ---------- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  match e.Ast.desc with
  | Ast.Binary (Ast.Add, { Ast.desc = Ast.Int 1L; _ }, { Ast.desc = Ast.Binary (Ast.Mul, _, _); _ }) ->
    ()
  | _ -> Alcotest.fail "wrong precedence tree"

let test_parse_left_assoc () =
  let e = Parser.parse_expr "10 - 3 - 2" in
  match e.Ast.desc with
  | Ast.Binary (Ast.Sub, { Ast.desc = Ast.Binary (Ast.Sub, _, _); _ }, { Ast.desc = Ast.Int 2L; _ }) ->
    ()
  | _ -> Alcotest.fail "subtraction must associate left"

let test_parse_unary () =
  let e = Parser.parse_expr "-x + !y" in
  match e.Ast.desc with
  | Ast.Binary (Ast.Add, { Ast.desc = Ast.Unary (Ast.Neg, _); _ }, { Ast.desc = Ast.Unary (Ast.Not, _); _ }) ->
    ()
  | _ -> Alcotest.fail "unary operators misparsed"

let test_parse_error_position () =
  try
    ignore (Parser.parse ~module_name:"m" "func f( { }");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, pos) ->
    Alcotest.(check int) "error on line 1" 1 pos.Ast.line

let test_parse_else_if_chain () =
  let u =
    Parser.parse ~module_name:"m"
      "func f(x) { if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; } }"
  in
  match u.Ast.decls with
  | [ Ast.Func_decl { body = [ { Ast.sdesc = Ast.If (_, _, [ { Ast.sdesc = Ast.If _; _ } ]); _ } ]; _ } ] ->
    ()
  | _ -> Alcotest.fail "else-if chain misparsed"

let test_parse_array_global_init () =
  let u = Parser.parse ~module_name:"m" "global t[3] = {1, 2, 3};" in
  match u.Ast.decls with
  | [ Ast.Global_decl { size = 3; init = [| 1L; 2L; 3L |]; _ } ] -> ()
  | _ -> Alcotest.fail "array init misparsed"

let test_parse_negative_init () =
  let u = Parser.parse ~module_name:"m" "global x = -7;" in
  match u.Ast.decls with
  | [ Ast.Global_decl { init = [| -7L |]; _ } ] -> ()
  | _ -> Alcotest.fail "negative init misparsed"

let test_parse_oversized_init_rejected () =
  Alcotest.(check bool) "too-long initializer rejected" true
    (try
       ignore (Parser.parse ~module_name:"m" "global t[2] = {1, 2, 3};");
       false
     with Parser.Parse_error _ -> true)

(* ---------- Sema ---------- *)

let sema_errors src =
  match Sema.analyze (Parser.parse ~module_name:"m" src) with
  | Ok _ -> []
  | Error errs -> errs

let test_sema_undeclared_var () =
  Alcotest.(check bool) "undeclared reported" true
    (sema_errors "func f() { return nope; }" <> [])

let test_sema_duplicate_global () =
  Alcotest.(check bool) "duplicate reported" true
    (sema_errors "global x; global x;" <> [])

let test_sema_duplicate_local () =
  Alcotest.(check bool) "duplicate local reported" true
    (sema_errors "func f() { var a = 1; var a = 2; return a; }" <> [])

let test_sema_shadowing_in_nested_block_ok () =
  Alcotest.(check int) "shadowing in nested block allowed" 0
    (List.length
       (sema_errors "func f() { var a = 1; if (a) { var a = 2; } return a; }"))

let test_sema_arity_check () =
  Alcotest.(check bool) "bad arity reported" true
    (sema_errors "func g(a, b) { return a + b; } func f() { return g(1); }" <> [])

let test_sema_extern_call_allowed () =
  Alcotest.(check int) "extern call passes sema" 0
    (List.length (sema_errors "func f() { return other_module_fn(1, 2); }"))

let test_sema_intrinsic_arity () =
  Alcotest.(check bool) "print arity enforced" true
    (sema_errors "func f() { print(1, 2); return 0; }" <> [])

let test_sema_array_as_scalar () =
  Alcotest.(check bool) "array as scalar reported" true
    (sema_errors "global t[4]; func f() { return t; }" <> [])

let test_sema_index_local () =
  Alcotest.(check bool) "indexing local reported" true
    (sema_errors "func f() { var a = 1; return a[0]; }" <> [])

let test_sema_call_global () =
  Alcotest.(check bool) "calling a global reported" true
    (sema_errors "global g; func f() { return g(); }" <> [])

let test_sema_intrinsic_shadowing () =
  Alcotest.(check bool) "shadowing print reported" true
    (sema_errors "func print(x) { return x; }" <> [])

(* ---------- Lowering (behaviour via interpreter) ---------- *)

let test_lower_if_else () =
  Alcotest.(check int64) "then branch" 1L
    (ret "func main() { if (2 > 1) { return 1; } else { return 2; } }");
  Alcotest.(check int64) "else branch" 2L
    (ret "func main() { if (1 > 2) { return 1; } else { return 2; } }")

let test_lower_while_loop () =
  Alcotest.(check int64) "sum 1..10" 55L
    (ret
       {|
       func main() {
         var total = 0;
         var i = 1;
         while (i <= 10) { total = total + i; i = i + 1; }
         return total;
       }
       |})

let test_lower_short_circuit_and () =
  (* The right operand must not execute when the left is false. *)
  Alcotest.(check (list int64)) "rhs not evaluated" []
    (output
       {|
       global g;
       func effect() { print(99); return 1; }
       func main() { if (0 && effect()) { g = 1; } return g; }
       |})

let test_lower_short_circuit_or () =
  Alcotest.(check (list int64)) "rhs not evaluated" []
    (output
       {|
       func effect() { print(99); return 1; }
       func main() { if (1 || effect()) { return 1; } return 0; }
       |})

let test_lower_short_circuit_values () =
  Alcotest.(check int64) "and value" 1L (ret "func main() { return 2 && 3; }");
  Alcotest.(check int64) "and zero" 0L (ret "func main() { return 2 && 0; }");
  Alcotest.(check int64) "or value" 1L (ret "func main() { return 0 || 5; }");
  Alcotest.(check int64) "or zero" 0L (ret "func main() { return 0 || 0; }")

let test_lower_implicit_return () =
  Alcotest.(check int64) "falls off end returns 0" 0L
    (ret "func main() { var x = 5; }")

let test_lower_static_mangling () =
  let m =
    Helpers.compile ~name:"mymod"
      "static func helper() { return 1; } func main() { return helper(); }"
  in
  let names = List.map (fun f -> f.Func.name) m.Cmo_il.Ilmod.funcs in
  Alcotest.(check (list string)) "static mangled"
    [ "mymod::helper"; "main" ] names;
  let helper = List.hd m.Cmo_il.Ilmod.funcs in
  Alcotest.(check bool) "linkage stays local" true
    (helper.Func.linkage = Func.Local)

let test_lower_static_globals_mangled () =
  let m = Helpers.compile ~name:"mm" "static global s; func f() { s = 1; return s; }" in
  match m.Cmo_il.Ilmod.globals with
  | [ g ] ->
    Alcotest.(check string) "mangled" "mm::s" g.Cmo_il.Ilmod.gname;
    Alcotest.(check bool) "not exported" false g.Cmo_il.Ilmod.exported
  | _ -> Alcotest.fail "expected one global"

let test_lower_verifies () =
  let src =
    {|
    global data[16];
    static func fill(n) {
      var i = 0;
      while (i < n) { data[i] = i * i; i = i + 1; }
      return 0;
    }
    func main() {
      fill(16);
      var s = 0;
      var i = 0;
      while (i < 16) { s = s + data[i]; i = i + 1; }
      print(s);
      return s;
    }
    |}
  in
  let m = Helpers.compile src in
  let issues = Verify.check_program [ m ] in
  Alcotest.(check int) "verifies clean" 0 (List.length issues)

let test_lower_src_lines_positive () =
  let m =
    Helpers.compile "func f() {\n  var a = 1;\n  return a;\n}\nfunc main() { return f(); }"
  in
  List.iter
    (fun f -> Alcotest.(check bool) "src_lines positive" true (f.Func.src_lines >= 1))
    m.Cmo_il.Ilmod.funcs

let test_lower_call_sites_deterministic () =
  let src = "func f() { return 0; } func main() { f(); f(); f(); return 0; }" in
  let m1 = Helpers.compile src in
  let m2 = Helpers.compile src in
  let sites m =
    List.concat_map
      (fun f -> List.map fst (Func.site_calls f))
      m.Cmo_il.Ilmod.funcs
  in
  Alcotest.(check (list int)) "same site ids" (sites m1) (sites m2);
  Alcotest.(check (list int)) "sites dense in order" [ 0; 1; 2 ] (sites m2)

let test_lower_nested_call_args () =
  Alcotest.(check int64) "nested calls" 11L
    (ret
       {|
       func add(a, b) { return a + b; }
       func main() { return add(add(1, 2), add(3, 5)); }
       |})

let test_lower_global_scalar_load_store () =
  Alcotest.(check int64) "scalar global" 6L
    (ret "global g; func main() { g = 2; g = g * 3; return g; }")

let test_lower_deep_expression () =
  Alcotest.(check int64) "complex expr" 1L
    (ret
       "func main() { return ((1 + 2 * 3) % 5 == 2) && ((7 ^ 1) == 6) && (8 >> 2 == 2); }")

let test_lower_for_loop () =
  Alcotest.(check int64) "sum of squares 0..9" 285L
    (ret
       {|
       func main() {
         var s = 0;
         for (var i = 0; i < 10; i = i + 1) { s = s + i * i; }
         return s;
       }
       |})

let test_lower_for_no_init_no_step () =
  Alcotest.(check int64) "for with empty header parts" 5L
    (ret
       {|
       func main() {
         var i = 0;
         for (; i < 5;) { i = i + 1; }
         return i;
       }
       |})

let test_lower_for_infinite_with_break () =
  Alcotest.(check int64) "for(;;) with break" 7L
    (ret
       {|
       func main() {
         var n = 0;
         for (;;) {
           n = n + 1;
           if (n == 7) { break; }
         }
         return n;
       }
       |})

let test_lower_break_in_while () =
  Alcotest.(check int64) "break leaves early" 4L
    (ret
       {|
       func main() {
         var i = 0;
         while (i < 100) {
           if (i == 4) { break; }
           i = i + 1;
         }
         return i;
       }
       |})

let test_lower_continue_skips () =
  (* Sum of odd numbers below 10. *)
  Alcotest.(check int64) "continue skips evens" 25L
    (ret
       {|
       func main() {
         var s = 0;
         for (var i = 0; i < 10; i = i + 1) {
           if (i % 2 == 0) { continue; }
           s = s + i;
         }
         return s;
       }
       |})

let test_lower_continue_in_while_reevaluates () =
  Alcotest.(check int64) "continue in while goes to the condition" 10L
    (ret
       {|
       func main() {
         var i = 0;
         var s = 0;
         while (i < 10) {
           i = i + 1;
           if (i & 1) { continue; }
           s = s + 2;
         }
         return s;
       }
       |})

let test_lower_nested_break () =
  (* break only exits the innermost loop. *)
  Alcotest.(check int64) "inner break only" 30L
    (ret
       {|
       func main() {
         var total = 0;
         for (var i = 0; i < 10; i = i + 1) {
           for (var j = 0; j < 100; j = j + 1) {
             if (j == 3) { break; }
             total = total + 1;
           }
         }
         return total;
       }
       |})

let test_for_scope_is_loop_local () =
  (* The for-init variable is not visible after the loop. *)
  Alcotest.(check bool) "loop variable out of scope after loop" true
    (sema_errors
       "func f() { for (var i = 0; i < 3; i = i + 1) { } return i; }"
    <> [])

let test_sema_break_outside_loop () =
  Alcotest.(check bool) "break outside loop rejected" true
    (sema_errors "func f() { break; return 0; }" <> []);
  Alcotest.(check bool) "continue outside loop rejected" true
    (sema_errors "func f() { continue; return 0; }" <> [])

let test_for_unrolls_and_optimizes () =
  (* A constant-trip for loop goes through the full optimizer. *)
  let m =
    Helpers.compile
      "func main() { var s = 0; for (var i = 0; i < 6; i = i + 1) { s = s + i; } return s; }"
  in
  let main = Option.get (Cmo_il.Ilmod.find_func m "main") in
  ignore (Cmo_hlo.Phase.optimize_func main);
  let o = Helpers.run [ m ] in
  Alcotest.(check int64) "still 15" 15L o.Interp.ret

let test_frontend_reports_errors () =
  match Frontend.compile ~module_name:"m" "func f() { return nope; }" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error errs -> Alcotest.(check bool) "has errors" true (errs <> [])

let test_frontend_compile_exn () =
  Alcotest.(check bool) "compile_exn raises Failure" true
    (try
       ignore (Frontend.compile_exn ~module_name:"m" "func f( {}");
       false
     with Failure _ -> true)

let suite =
  [
    ("lex tokens", `Quick, test_lex_tokens);
    ("lex comments", `Quick, test_lex_comments_skipped);
    ("lex line numbers", `Quick, test_lex_line_numbers);
    ("lex two-char operators", `Quick, test_lex_two_char_operators);
    ("lex illegal char", `Quick, test_lex_illegal_char);
    ("parse precedence", `Quick, test_parse_precedence);
    ("parse left associativity", `Quick, test_parse_left_assoc);
    ("parse unary", `Quick, test_parse_unary);
    ("parse error position", `Quick, test_parse_error_position);
    ("parse else-if chain", `Quick, test_parse_else_if_chain);
    ("parse array init", `Quick, test_parse_array_global_init);
    ("parse negative init", `Quick, test_parse_negative_init);
    ("parse oversized init rejected", `Quick, test_parse_oversized_init_rejected);
    ("sema undeclared variable", `Quick, test_sema_undeclared_var);
    ("sema duplicate global", `Quick, test_sema_duplicate_global);
    ("sema duplicate local", `Quick, test_sema_duplicate_local);
    ("sema nested shadowing ok", `Quick, test_sema_shadowing_in_nested_block_ok);
    ("sema arity check", `Quick, test_sema_arity_check);
    ("sema extern call allowed", `Quick, test_sema_extern_call_allowed);
    ("sema intrinsic arity", `Quick, test_sema_intrinsic_arity);
    ("sema array as scalar", `Quick, test_sema_array_as_scalar);
    ("sema index local", `Quick, test_sema_index_local);
    ("sema call a global", `Quick, test_sema_call_global);
    ("sema intrinsic shadowing", `Quick, test_sema_intrinsic_shadowing);
    ("lower if/else", `Quick, test_lower_if_else);
    ("lower while", `Quick, test_lower_while_loop);
    ("lower && short-circuits", `Quick, test_lower_short_circuit_and);
    ("lower || short-circuits", `Quick, test_lower_short_circuit_or);
    ("lower &&/|| values", `Quick, test_lower_short_circuit_values);
    ("lower implicit return", `Quick, test_lower_implicit_return);
    ("lower static function mangling", `Quick, test_lower_static_mangling);
    ("lower static global mangling", `Quick, test_lower_static_globals_mangled);
    ("lowered IL verifies", `Quick, test_lower_verifies);
    ("lower src_lines positive", `Quick, test_lower_src_lines_positive);
    ("lower call sites deterministic", `Quick, test_lower_call_sites_deterministic);
    ("lower nested call args", `Quick, test_lower_nested_call_args);
    ("lower global scalar", `Quick, test_lower_global_scalar_load_store);
    ("lower deep expression", `Quick, test_lower_deep_expression);
    ("lower for loop", `Quick, test_lower_for_loop);
    ("lower for empty parts", `Quick, test_lower_for_no_init_no_step);
    ("lower for(;;) + break", `Quick, test_lower_for_infinite_with_break);
    ("lower break", `Quick, test_lower_break_in_while);
    ("lower continue (for)", `Quick, test_lower_continue_skips);
    ("lower continue (while)", `Quick, test_lower_continue_in_while_reevaluates);
    ("lower nested break", `Quick, test_lower_nested_break);
    ("sema for-init scope", `Quick, test_for_scope_is_loop_local);
    ("sema break/continue placement", `Quick, test_sema_break_outside_loop);
    ("for + optimizer", `Quick, test_for_unrolls_and_optimizes);
    ("frontend reports errors", `Quick, test_frontend_reports_errors);
    ("frontend compile_exn", `Quick, test_frontend_compile_exn);
  ]
