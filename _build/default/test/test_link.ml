(* Tests for object files, clustering and the linker. *)

module Ilmod = Cmo_il.Ilmod
module Mach = Cmo_llo.Mach
module Llo = Cmo_llo.Llo
module Objfile = Cmo_link.Objfile
module Cluster = Cmo_link.Cluster
module Linker = Cmo_link.Linker
module Image = Cmo_link.Image
module Vm = Cmo_vm.Vm

let code_object (m : Ilmod.t) =
  let codes, _ = Llo.compile_module m in
  Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
    ~source_digest:"d0" codes

let sample_objects () =
  Helpers.compile_all
    [
      ("app", "global counter; func main() { counter = lib_fn(5); return counter; }");
      ("lib", "func lib_fn(x) { return x * 3; }");
    ]
  |> List.map code_object

let test_objfile_roundtrip_code () =
  let obj = List.hd (sample_objects ()) in
  let obj' = Objfile.decode (Objfile.encode obj) in
  Alcotest.(check string) "module" obj.Objfile.module_name obj'.Objfile.module_name;
  Alcotest.(check string) "digest" "d0" obj'.Objfile.source_digest;
  Alcotest.(check (list string)) "funcs" (Objfile.func_names obj)
    (Objfile.func_names obj');
  Alcotest.(check bool) "not IL" false (Objfile.is_il obj')

let test_objfile_roundtrip_il () =
  let m = Helpers.compile ~name:"x" "global g[3] = {1,2,3}; func main() { return g[1]; }" in
  let obj = Objfile.of_il ~source_digest:"abc" m in
  let obj' = Objfile.decode (Objfile.encode obj) in
  Alcotest.(check bool) "is IL" true (Objfile.is_il obj');
  Alcotest.(check (list string)) "globals carried" [ "g" ]
    (List.map (fun (g : Ilmod.global) -> g.Ilmod.gname) obj'.Objfile.globals);
  match obj'.Objfile.payload with
  | Objfile.Il m' ->
    Helpers.check_same_behaviour "decoded module runs" [ m ] [ m' ]
  | Objfile.Code _ -> Alcotest.fail "expected IL payload"

let test_objfile_save_load () =
  let obj = List.hd (sample_objects ()) in
  let path = Filename.temp_file "cmo_obj" ".o" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Objfile.save obj path;
      let obj' = Objfile.load path in
      Alcotest.(check string) "roundtrip via disk" obj.Objfile.module_name
        obj'.Objfile.module_name)

let test_objfile_bad_magic () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Objfile.decode "not an object file");
       false
     with Cmo_support.Codec.Reader.Corrupt _ -> true)

let test_linker_resolves_and_runs () =
  match Linker.link (sample_objects ()) with
  | Ok image ->
    let o = Vm.run image in
    Alcotest.(check int64) "15" 15L o.Vm.ret;
    (* No symbolic instructions left. *)
    Array.iter
      (fun i ->
        match i with
        | Mach.Call_sym s -> Alcotest.failf "unresolved call %s" s
        | Mach.Lga (_, s) -> Alcotest.failf "unresolved global %s" s
        | _ -> ())
      image.Image.code
  | Error errs ->
    Alcotest.failf "link failed: %a" (Format.pp_print_list Linker.pp_error) errs

let test_linker_undefined_symbol () =
  let objs =
    [ code_object (Helpers.compile ~name:"app" "func main() { return missing(); }") ]
  in
  match Linker.link objs with
  | Error errs ->
    Alcotest.(check bool) "undefined reported" true
      (List.exists
         (function Linker.Undefined_symbol (_, "missing") -> true | _ -> false)
         errs)
  | Ok _ -> Alcotest.fail "expected link error"

let test_linker_duplicate_symbol () =
  let m1 = Helpers.compile ~name:"m1" "func dup() { return 1; } func main() { return dup(); }" in
  let m2 = Helpers.compile ~name:"m2" "func dup() { return 2; }" in
  match Linker.link [ code_object m1; code_object m2 ] with
  | Error errs ->
    Alcotest.(check bool) "duplicate reported" true
      (List.exists
         (function Linker.Duplicate_symbol ("dup", _, _) -> true | _ -> false)
         errs)
  | Ok _ -> Alcotest.fail "expected link error"

let test_linker_no_main () =
  let m = Helpers.compile ~name:"lib" "func f() { return 1; }" in
  match Linker.link [ code_object m ] with
  | Error errs ->
    Alcotest.(check bool) "no entry reported" true (List.mem Linker.No_entry errs)
  | Ok _ -> Alcotest.fail "expected link error"

let test_linker_rejects_il_payload () =
  let m = Helpers.compile ~name:"x" "func main() { return 1; }" in
  match Linker.link [ Objfile.of_il ~source_digest:"" m ] with
  | Error errs ->
    Alcotest.(check bool) "IL payload reported" true
      (List.exists (function Linker.Il_payload "x" -> true | _ -> false) errs)
  | Ok _ -> Alcotest.fail "expected link error"

let test_linker_routine_order_respected () =
  let objs = sample_objects () in
  match Linker.link ~routine_order:[ "lib_fn"; "main" ] objs with
  | Ok image ->
    Alcotest.(check (list string)) "placement order" [ "lib_fn"; "main" ]
      (List.map (fun (n, _, _) -> n) image.Image.funcs);
    Alcotest.(check int64) "still runs" 15L (Vm.run image).Vm.ret
  | Error errs ->
    Alcotest.failf "link failed: %a" (Format.pp_print_list Linker.pp_error) errs

let test_linker_data_init () =
  let m =
    Helpers.compile ~name:"m"
      "global t[4] = {5, 0, 7}; global s = 3; func main() { return t[0] + t[1] + t[2] + s; }"
  in
  match Linker.link [ code_object m ] with
  | Ok image ->
    Alcotest.(check int) "data cells" 5 image.Image.data_cells;
    Alcotest.(check int64) "initialized data" 15L (Vm.run image).Vm.ret
  | Error _ -> Alcotest.fail "link failed"

let test_image_func_of_address () =
  match Linker.link (sample_objects ()) with
  | Ok image ->
    let name, start, _ = List.hd image.Image.funcs in
    Alcotest.(check (option string)) "address maps to function" (Some name)
      (Image.func_of_address image start)
  | Error _ -> Alcotest.fail "link failed"

let test_cluster_basic () =
  let order =
    Cluster.order
      ~names:[ "a"; "b"; "c"; "d" ]
      ~weights:[ (("a", "c"), 100.0); (("c", "d"), 50.0) ]
  in
  (* a-c-d chain together, hot chain first, b (cold) last. *)
  Alcotest.(check (list string)) "chained" [ "a"; "c"; "d"; "b" ] order

let test_cluster_permutation () =
  let names = [ "w"; "x"; "y"; "z" ] in
  let order =
    Cluster.order ~names
      ~weights:[ (("z", "w"), 5.0); (("x", "y"), 50.0); (("y", "z"), 2.0) ]
  in
  Alcotest.(check (list string)) "is a permutation" (List.sort compare names)
    (List.sort compare order)

let test_cluster_no_weights_identity () =
  let names = [ "m1"; "m2"; "m3" ] in
  Alcotest.(check (list string)) "unchanged" names
    (Cluster.order ~names ~weights:[])

let test_cluster_ignores_unknown_names () =
  let order =
    Cluster.order ~names:[ "a"; "b" ] ~weights:[ (("ghost", "a"), 9.0) ]
  in
  Alcotest.(check (list string)) "unknowns ignored" [ "a"; "b" ] order

let suite =
  [
    ("objfile code roundtrip", `Quick, test_objfile_roundtrip_code);
    ("objfile IL roundtrip", `Quick, test_objfile_roundtrip_il);
    ("objfile save/load", `Quick, test_objfile_save_load);
    ("objfile bad magic", `Quick, test_objfile_bad_magic);
    ("linker resolves and runs", `Quick, test_linker_resolves_and_runs);
    ("linker undefined symbol", `Quick, test_linker_undefined_symbol);
    ("linker duplicate symbol", `Quick, test_linker_duplicate_symbol);
    ("linker no main", `Quick, test_linker_no_main);
    ("linker rejects IL payloads", `Quick, test_linker_rejects_il_payload);
    ("linker routine order", `Quick, test_linker_routine_order_respected);
    ("linker data initialization", `Quick, test_linker_data_init);
    ("image address map", `Quick, test_image_func_of_address);
    ("cluster chains hot pairs", `Quick, test_cluster_basic);
    ("cluster is a permutation", `Quick, test_cluster_permutation);
    ("cluster identity without weights", `Quick, test_cluster_no_weights_identity);
    ("cluster ignores unknown names", `Quick, test_cluster_ignores_unknown_names);
  ]
