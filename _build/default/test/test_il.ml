(* Tests for the IL core: instruction helpers, function/CFG utilities,
   symbol table, call graph, verifier, codec roundtrips, size model,
   and the reference interpreter. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Symtab = Cmo_il.Symtab
module Callgraph = Cmo_il.Callgraph
module Verify = Cmo_il.Verify
module Ilcodec = Cmo_il.Ilcodec
module Size = Cmo_il.Size
module Interp = Cmo_il.Interp
module Intern = Cmo_support.Intern

(* ---------- Instr ---------- *)

let test_eval_binop_basic () =
  Alcotest.(check int64) "add" 7L (Instr.eval_binop Instr.Add 3L 4L);
  Alcotest.(check int64) "sub" (-1L) (Instr.eval_binop Instr.Sub 3L 4L);
  Alcotest.(check int64) "mul" 12L (Instr.eval_binop Instr.Mul 3L 4L);
  Alcotest.(check int64) "div" 3L (Instr.eval_binop Instr.Div 7L 2L);
  Alcotest.(check int64) "rem" 1L (Instr.eval_binop Instr.Rem 7L 2L)

let test_eval_binop_div_zero () =
  Alcotest.(check int64) "div by zero is 0" 0L (Instr.eval_binop Instr.Div 7L 0L);
  Alcotest.(check int64) "rem by zero is 0" 0L (Instr.eval_binop Instr.Rem 7L 0L)

let test_eval_binop_compare () =
  Alcotest.(check int64) "lt true" 1L (Instr.eval_binop Instr.Lt 1L 2L);
  Alcotest.(check int64) "lt false" 0L (Instr.eval_binop Instr.Lt 2L 1L);
  Alcotest.(check int64) "eq" 1L (Instr.eval_binop Instr.Eq 5L 5L);
  Alcotest.(check int64) "ge" 1L (Instr.eval_binop Instr.Ge 5L 5L);
  Alcotest.(check int64) "ne" 0L (Instr.eval_binop Instr.Ne 5L 5L)

let test_eval_binop_shift_masked () =
  Alcotest.(check int64) "shl 65 == shl 1" 2L (Instr.eval_binop Instr.Shl 1L 65L);
  Alcotest.(check int64) "shr sign extends" (-1L)
    (Instr.eval_binop Instr.Shr (-2L) 1L)

let test_eval_unop () =
  Alcotest.(check int64) "neg" (-3L) (Instr.eval_unop Instr.Neg 3L);
  Alcotest.(check int64) "not 0" 1L (Instr.eval_unop Instr.Not 0L);
  Alcotest.(check int64) "not nonzero" 0L (Instr.eval_unop Instr.Not 42L)

let test_instr_def_uses () =
  let i = Instr.Binop (Instr.Add, 5, Instr.Reg 1, Instr.Reg 2) in
  Alcotest.(check (option int)) "def" (Some 5) (Instr.def i);
  Alcotest.(check (list int)) "uses" [ 1; 2 ] (Instr.uses i);
  let st = Instr.Store ({ Instr.base = "g"; index = Instr.Reg 3 }, Instr.Reg 4) in
  Alcotest.(check (option int)) "store defs nothing" None (Instr.def st);
  Alcotest.(check (list int)) "store uses" [ 3; 4 ] (Instr.uses st)

let test_instr_map_operands () =
  let i = Instr.Binop (Instr.Add, 5, Instr.Reg 1, Instr.Imm 3L) in
  let mapped =
    Instr.map_operands
      (function Instr.Reg 1 -> Instr.Reg 9 | o -> o)
      i
  in
  Alcotest.(check (list int)) "remapped" [ 9 ] (Instr.uses mapped);
  Alcotest.(check (option int)) "def untouched" (Some 5) (Instr.def mapped)

let test_terminator_targets () =
  Alcotest.(check (list int)) "ret" [] (Instr.targets (Instr.Ret None));
  Alcotest.(check (list int)) "jmp" [ 3 ] (Instr.targets (Instr.Jmp 3));
  Alcotest.(check (list int)) "br" [ 1; 2 ]
    (Instr.targets (Instr.Br { cond = Instr.Reg 0; ifso = 1; ifnot = 2 }))

let test_retarget () =
  let t = Instr.Br { cond = Instr.Reg 0; ifso = 1; ifnot = 2 } in
  let t' = Instr.retarget (fun l -> l + 10) t in
  Alcotest.(check (list int)) "retargeted" [ 11; 12 ] (Instr.targets t')

let test_is_pure () =
  Alcotest.(check bool) "binop pure" true
    (Instr.is_pure (Instr.Binop (Instr.Add, 0, Instr.Imm 1L, Instr.Imm 2L)));
  Alcotest.(check bool) "load impure" false
    (Instr.is_pure (Instr.Load (0, { Instr.base = "g"; index = Instr.Imm 0L })));
  Alcotest.(check bool) "call impure" false
    (Instr.is_pure
       (Instr.Call
          { Instr.dst = None; callee = "f"; args = []; site = 0; call_count = 0.0 }))

(* ---------- Func ---------- *)

let test_func_add_block () =
  let f = Func.create ~name:"f" ~arity:1 ~linkage:Func.Exported in
  let b0 = Func.add_block f [] (Instr.Ret None) in
  let b1 = Func.add_block f [] (Instr.Jmp b0.Func.label) in
  Alcotest.(check int) "labels dense" 0 b0.Func.label;
  Alcotest.(check int) "labels dense" 1 b1.Func.label;
  Alcotest.(check int) "two blocks" 2 (List.length f.Func.blocks)

let test_func_new_reg_after_params () =
  let f = Func.create ~name:"f" ~arity:3 ~linkage:Func.Exported in
  Alcotest.(check int) "first temp after params" 3 (Func.new_reg f)

let test_func_predecessors () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b0 = Func.add_block f [] (Instr.Ret None) in
  let b1 = Func.add_block f [] (Instr.Jmp b0.Func.label) in
  let b2 =
    Func.add_block f []
      (Instr.Br { cond = Instr.Imm 1L; ifso = b0.Func.label; ifnot = b1.Func.label })
  in
  f.Func.entry <- b2.Func.label;
  let preds = Func.predecessors f in
  Alcotest.(check (list int)) "b0 preds" [ b1.Func.label; b2.Func.label ]
    (List.sort compare (Hashtbl.find preds b0.Func.label));
  Alcotest.(check (list int)) "b2 preds" [] (Hashtbl.find preds b2.Func.label)

let test_func_reachable () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b0 = Func.add_block f [] (Instr.Ret None) in
  let _unreachable = Func.add_block f [] (Instr.Ret None) in
  f.Func.entry <- b0.Func.label;
  let r = Func.reachable f in
  Alcotest.(check int) "only entry reachable" 1 (Hashtbl.length r)

let test_func_copy_independent () =
  let f = Helpers.make_linear_func "f" in
  let g = Func.copy f in
  let b = List.hd g.Func.blocks in
  b.Func.instrs <- [];
  Alcotest.(check int) "original unchanged" 2
    (List.length (List.hd f.Func.blocks).Func.instrs)

let test_func_site_calls () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let s0 = Func.new_site f in
  let s1 = Func.new_site f in
  let call s =
    Instr.Call { Instr.dst = None; callee = "g"; args = []; site = s; call_count = 0.0 }
  in
  let b = Func.add_block f [ call s0; call s1 ] (Instr.Ret None) in
  f.Func.entry <- b.Func.label;
  Alcotest.(check (list int)) "sites in order" [ 0; 1 ]
    (List.map fst (Func.site_calls f))

(* ---------- Symtab ---------- *)

let two_module_program () =
  let m1 = Ilmod.create "m1" in
  ignore (Ilmod.add_global m1 ~name:"shared" ~size:4 ~exported:true ());
  let main = Func.create ~name:"main" ~arity:0 ~linkage:Func.Exported in
  let r = Func.new_reg main in
  let s = Func.new_site main in
  let b =
    Func.add_block main
      [
        Instr.Call
          { Instr.dst = Some r; callee = "helper"; args = [ Instr.Imm 3L ];
            site = s; call_count = 0.0 };
        Instr.Store ({ Instr.base = "shared"; index = Instr.Imm 0L }, Instr.Reg r);
      ]
      (Instr.Ret (Some (Instr.Reg r)))
  in
  main.Func.entry <- b.Func.label;
  Ilmod.add_func m1 main;
  let m2 = Ilmod.create "m2" in
  let helper = Func.create ~name:"helper" ~arity:1 ~linkage:Func.Exported in
  let t = Func.new_reg helper in
  let hb =
    Func.add_block helper
      [ Instr.Binop (Instr.Mul, t, Instr.Reg 0, Instr.Imm 2L) ]
      (Instr.Ret (Some (Instr.Reg t)))
  in
  helper.Func.entry <- hb.Func.label;
  Ilmod.add_func m2 helper;
  [ m1; m2 ]

let test_symtab_build_ok () =
  match Symtab.build (two_module_program ()) with
  | Ok st ->
    Alcotest.(check bool) "main found" true
      (Symtab.find_exported st "main" <> None);
    Alcotest.(check bool) "helper found" true
      (Symtab.find_exported st "helper" <> None);
    Alcotest.(check (list string)) "order" [ "shared"; "main"; "helper" ]
      (Symtab.defined_names st)
  | Error _ -> Alcotest.fail "expected Ok"

let test_symtab_duplicate () =
  let m1 = Ilmod.create "m1" in
  Ilmod.add_func m1 (Helpers.make_linear_func "f");
  let m2 = Ilmod.create "m2" in
  Ilmod.add_func m2 (Helpers.make_linear_func "f");
  match Symtab.build [ m1; m2 ] with
  | Error [ Symtab.Duplicate ("f", "m1", "m2") ] -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected duplicate error"

let test_symtab_undefined () =
  let m = Ilmod.create "m" in
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let s = Func.new_site f in
  let b =
    Func.add_block f
      [ Instr.Call { Instr.dst = None; callee = "missing"; args = []; site = s; call_count = 0.0 } ]
      (Instr.Ret None)
  in
  f.Func.entry <- b.Func.label;
  Ilmod.add_func m f;
  match Symtab.build [ m ] with
  | Error [ Symtab.Undefined ("m", "missing") ] -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected undefined error"

let test_symtab_local_not_exported () =
  let m = Ilmod.create "m" in
  Ilmod.add_func m (Helpers.make_linear_func ~linkage:Func.Local "m::f");
  match Symtab.build [ m ] with
  | Ok st ->
    Alcotest.(check bool) "find sees it" true
      (Symtab.find st ~current_module:"m" "m::f" <> None);
    Alcotest.(check bool) "find_exported hides it" true
      (Symtab.find_exported st "m::f" = None)
  | Error _ -> Alcotest.fail "expected Ok"

(* ---------- Callgraph ---------- *)

let call_chain_modules () =
  (* a -> b -> c, plus recursive d -> d *)
  let m = Ilmod.create "m" in
  let mk name callees =
    let f = Func.create ~name ~arity:0 ~linkage:Func.Exported in
    let instrs =
      List.map
        (fun callee ->
          Instr.Call
            { Instr.dst = None; callee; args = []; site = Func.new_site f; call_count = 0.0 })
        callees
    in
    let b = Func.add_block f instrs (Instr.Ret None) in
    f.Func.entry <- b.Func.label;
    Ilmod.add_func m f
  in
  mk "a" [ "b" ];
  mk "b" [ "c" ];
  mk "c" [];
  mk "d" [ "d" ];
  m

let test_callgraph_edges () =
  let cg = Callgraph.build [ call_chain_modules () ] in
  Alcotest.(check int) "nodes" 4 (List.length (Callgraph.nodes cg));
  Alcotest.(check int) "edges" 3 (List.length (Callgraph.edges cg));
  Alcotest.(check (list string)) "a callees" [ "b" ]
    (List.map (fun e -> e.Callgraph.callee) (Callgraph.callees cg "a"));
  Alcotest.(check (list string)) "c callers" [ "b" ]
    (List.map (fun e -> e.Callgraph.caller) (Callgraph.callers cg "c"))

let test_callgraph_bottom_up () =
  let cg = Callgraph.build [ call_chain_modules () ] in
  let order = Callgraph.bottom_up cg in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.fail (name ^ " missing from order")
      | x :: _ when x = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "c before b" true (pos "c" < pos "b");
  Alcotest.(check bool) "b before a" true (pos "b" < pos "a")

let test_callgraph_cycle () =
  let cg = Callgraph.build [ call_chain_modules () ] in
  Alcotest.(check bool) "d is recursive" true (Callgraph.in_cycle cg "d");
  Alcotest.(check bool) "a is not" false (Callgraph.in_cycle cg "a")

let test_callgraph_mutual_cycle () =
  let m = Ilmod.create "m" in
  let mk name callee =
    let f = Func.create ~name ~arity:0 ~linkage:Func.Exported in
    let b =
      Func.add_block f
        [ Instr.Call { Instr.dst = None; callee; args = []; site = Func.new_site f; call_count = 0.0 } ]
        (Instr.Ret None)
    in
    f.Func.entry <- b.Func.label;
    Ilmod.add_func m f
  in
  mk "even" "odd";
  mk "odd" "even";
  let cg = Callgraph.build [ m ] in
  Alcotest.(check bool) "even in cycle" true (Callgraph.in_cycle cg "even");
  Alcotest.(check bool) "odd in cycle" true (Callgraph.in_cycle cg "odd")

let test_callgraph_intrinsics_skipped () =
  let m = Ilmod.create "m" in
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b =
    Func.add_block f
      [
        Instr.Call
          { Instr.dst = None; callee = "print"; args = [ Instr.Imm 1L ];
            site = Func.new_site f; call_count = 0.0 };
      ]
      (Instr.Ret None)
  in
  f.Func.entry <- b.Func.label;
  Ilmod.add_func m f;
  let cg = Callgraph.build [ m ] in
  Alcotest.(check int) "no intrinsic edges" 0 (List.length (Callgraph.edges cg))

(* ---------- Verify ---------- *)

let test_verify_clean () =
  let issues = Verify.check_program (two_module_program ()) in
  Alcotest.(check int) "no issues" 0 (List.length issues)

let test_verify_missing_target () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b = Func.add_block f [] (Instr.Jmp 99) in
  f.Func.entry <- b.Func.label;
  let issues = Verify.check_func ~module_name:"m" f in
  Alcotest.(check bool) "missing label reported" true
    (List.exists (fun i -> i.Verify.func = "f") issues)

let test_verify_bad_register () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b =
    Func.add_block f [ Instr.Move (57, Instr.Imm 0L) ] (Instr.Ret None)
  in
  f.Func.entry <- b.Func.label;
  Alcotest.(check bool) "bad register reported" true
    (Verify.check_func ~module_name:"m" f <> [])

let test_verify_duplicate_site () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let s = Func.new_site f in
  let call =
    Instr.Call { Instr.dst = None; callee = "print"; args = [ Instr.Imm 1L ]; site = s; call_count = 0.0 }
  in
  let b = Func.add_block f [ call; call ] (Instr.Ret None) in
  f.Func.entry <- b.Func.label;
  Alcotest.(check bool) "duplicate site reported" true
    (List.exists
       (fun i -> String.length i.Verify.message > 0)
       (Verify.check_func ~module_name:"m" f))

let test_verify_intrinsic_arity () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b =
    Func.add_block f
      [
        Instr.Call
          { Instr.dst = None; callee = "print"; args = []; site = Func.new_site f; call_count = 0.0 };
      ]
      (Instr.Ret None)
  in
  f.Func.entry <- b.Func.label;
  Alcotest.(check bool) "arity error reported" true
    (Verify.check_func ~module_name:"m" f <> [])

let test_verify_empty_function () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  Alcotest.(check bool) "empty function reported" true
    (Verify.check_func ~module_name:"m" f <> [])

(* ---------- Ilcodec ---------- *)

let test_codec_func_roundtrip () =
  let f = Helpers.make_linear_func "f" in
  let g = Ilcodec.roundtrip_func f in
  Alcotest.(check string) "name" f.Func.name g.Func.name;
  Alcotest.(check int) "arity" f.Func.arity g.Func.arity;
  Alcotest.(check int) "blocks" (List.length f.Func.blocks)
    (List.length g.Func.blocks);
  Alcotest.(check int) "instrs" (Func.instr_count f) (Func.instr_count g);
  Alcotest.(check int) "src_lines" f.Func.src_lines g.Func.src_lines

let test_codec_module_roundtrip_behaviour () =
  let src =
    {|
    global acc;
    static global table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    static func sum(n) {
      var total = 0;
      var i = 0;
      while (i < n) {
        total = total + table[i];
        i = i + 1;
      }
      return total;
    }
    func main() {
      acc = sum(8);
      print(acc);
      return acc;
    }
    |}
  in
  let m = Helpers.compile src in
  let bytes = Cmo_il.Ilcodec.encode_module m in
  let m' = Cmo_il.Ilcodec.decode_module bytes in
  Helpers.check_same_behaviour "decoded module behaves identically" [ m ] [ m' ]

let test_codec_module_roundtrip_structure () =
  let modules = two_module_program () in
  List.iter
    (fun m ->
      let m' = Ilcodec.decode_module (Ilcodec.encode_module m) in
      Alcotest.(check string) "module name" m.Ilmod.mname m'.Ilmod.mname;
      Alcotest.(check int) "globals" (List.length m.Ilmod.globals)
        (List.length m'.Ilmod.globals);
      Alcotest.(check int) "funcs" (List.length m.Ilmod.funcs)
        (List.length m'.Ilmod.funcs);
      Alcotest.(check int) "instr count" (Ilmod.instr_count m)
        (Ilmod.instr_count m'))
    modules

let test_codec_compacted_smaller () =
  let src =
    {|
    func work(a, b, c) {
      var x = a * b + c;
      var y = x * x - a;
      if (y > 100) { y = y - 100; } else { y = y + 7; }
      while (x > 0) { x = x - 1; y = y + x; }
      return y;
    }
    func main() { return work(3, 4, 5); }
    |}
  in
  let m = Helpers.compile src in
  let compact = String.length (Cmo_il.Ilcodec.encode_module m) in
  let expanded = Size.module_expanded_bytes m in
  Alcotest.(check bool)
    (Printf.sprintf "compact %d << expanded %d" compact expanded)
    true
    (compact * 4 < expanded)

let test_codec_corrupt_rejected () =
  let m = List.hd (two_module_program ()) in
  let bytes = Cmo_il.Ilcodec.encode_module m in
  let corrupted = "\xFF" ^ String.sub bytes 1 (String.length bytes - 1) in
  Alcotest.(check bool) "version mismatch raises" true
    (try
       ignore (Ilcodec.decode_module corrupted);
       false
     with Cmo_support.Codec.Reader.Corrupt _ -> true)

let test_codec_preserves_freq_and_counts () =
  let f = Helpers.make_linear_func "f" in
  (List.hd f.Func.blocks).Func.freq <- 123.0;
  let g = Ilcodec.roundtrip_func f in
  Alcotest.(check (float 0.0)) "freq preserved" 123.0
    (List.hd g.Func.blocks).Func.freq

(* ---------- Size model ---------- *)

let test_size_monotone_in_instrs () =
  let small = Helpers.make_linear_func "small" in
  let big = Func.create ~name:"big" ~arity:2 ~linkage:Func.Exported in
  let instrs =
    List.init 20 (fun i ->
        Instr.Binop (Instr.Add, 2 + i, Instr.Reg 0, Instr.Imm 1L))
  in
  big.Func.next_reg <- 30;
  let b = Func.add_block big instrs (Instr.Ret None) in
  big.Func.entry <- b.Func.label;
  Alcotest.(check bool) "more instrs, more bytes" true
    (Size.func_expanded_bytes big > Size.func_expanded_bytes small)

let test_size_derived_fraction () =
  let f = Helpers.make_linear_func "f" in
  let full = Size.func_expanded_bytes f in
  let core = Size.func_expanded_core_bytes f in
  (* Paper: derived-attribute slots are about 2/3 of an object. *)
  Alcotest.(check bool) "derived slots are a large fraction" true
    (float_of_int core < 0.7 *. float_of_int full)

(* ---------- Interp ---------- *)

let test_interp_arith () =
  let o = Helpers.run_main "func main() { return 2 + 3 * 4; }" in
  Alcotest.(check int64) "2+3*4" 14L o.Interp.ret

let test_interp_globals () =
  let o =
    Helpers.run_main
      {|
      global g;
      global arr[4];
      func main() {
        g = 5;
        arr[2] = g * 2;
        return arr[2] + g;
      }
      |}
  in
  Alcotest.(check int64) "globals" 15L o.Interp.ret

let test_interp_print_order () =
  let o =
    Helpers.run_main
      "func main() { print(1); print(2); print(3); return 0; }"
  in
  Alcotest.(check (list int64)) "output order" [ 1L; 2L; 3L ] o.Interp.output

let test_interp_arg_input () =
  let o =
    Helpers.run ~input:[| 10L; 20L; 30L |]
      [ Helpers.compile "func main() { return arg(1) + arg(4); }" ]
  in
  (* arg wraps modulo input length: arg(4) = input[1]. *)
  Alcotest.(check int64) "input values" 40L o.Interp.ret

let test_interp_arg_empty_input () =
  let o = Helpers.run_main "func main() { return arg(0); }" in
  Alcotest.(check int64) "empty input yields 0" 0L o.Interp.ret

let test_interp_cross_module_call () =
  let modules =
    Helpers.compile_all
      [
        ("main_mod", "func main() { return helper(21); }");
        ("lib_mod", "func helper(x) { return x * 2; }");
      ]
  in
  let o = Helpers.run modules in
  Alcotest.(check int64) "cross-module call" 42L o.Interp.ret

let test_interp_recursion () =
  let o =
    Helpers.run_main
      {|
      func fact(n) {
        if (n <= 1) { return 1; }
        return n * fact(n - 1);
      }
      func main() { return fact(10); }
      |}
  in
  Alcotest.(check int64) "10!" 3628800L o.Interp.ret

let test_interp_fuel_exhaustion () =
  Alcotest.(check bool) "infinite loop runs out of fuel" true
    (try
       ignore
         (Interp.run ~fuel:1000
            [ Helpers.compile "func main() { while (1) { } return 0; }" ]);
       false
     with Interp.Runtime_error _ -> true)

let test_interp_depth_limit () =
  Alcotest.(check bool) "unbounded recursion trapped" true
    (try
       ignore
         (Interp.run ~max_depth:100
            [ Helpers.compile "func f(n) { return f(n + 1); } func main() { return f(0); }" ]);
       false
     with Interp.Runtime_error _ -> true)

let test_interp_oob_trapped () =
  Alcotest.(check bool) "out of bounds trapped" true
    (try
       ignore
         (Helpers.run_main "global a[4]; func main() { return a[9]; }");
       false
     with Interp.Runtime_error _ -> true)

let test_interp_probe_counters () =
  let f = Func.create ~name:"main" ~arity:0 ~linkage:Func.Exported in
  let b =
    Func.add_block f [ Instr.Probe 7; Instr.Probe 7; Instr.Probe 3 ]
      (Instr.Ret (Some (Instr.Imm 0L)))
  in
  f.Func.entry <- b.Func.label;
  let m = Ilmod.create "m" in
  Ilmod.add_func m f;
  let o = Interp.run [ m ] in
  Alcotest.(check (list (pair int int64))) "probe counts"
    [ (3, 1L); (7, 2L) ]
    o.Interp.probes

let test_interp_steps_counted () =
  let o = Helpers.run_main "func main() { return 1 + 2; }" in
  Alcotest.(check bool) "steps positive" true (o.Interp.steps > 0)

let suite =
  [
    ("eval_binop basics", `Quick, test_eval_binop_basic);
    ("eval_binop div by zero", `Quick, test_eval_binop_div_zero);
    ("eval_binop comparisons", `Quick, test_eval_binop_compare);
    ("eval_binop shifts masked", `Quick, test_eval_binop_shift_masked);
    ("eval_unop", `Quick, test_eval_unop);
    ("instr def/uses", `Quick, test_instr_def_uses);
    ("instr map_operands", `Quick, test_instr_map_operands);
    ("terminator targets", `Quick, test_terminator_targets);
    ("terminator retarget", `Quick, test_retarget);
    ("is_pure", `Quick, test_is_pure);
    ("func add_block labels", `Quick, test_func_add_block);
    ("func new_reg after params", `Quick, test_func_new_reg_after_params);
    ("func predecessors", `Quick, test_func_predecessors);
    ("func reachable", `Quick, test_func_reachable);
    ("func copy independent", `Quick, test_func_copy_independent);
    ("func site_calls order", `Quick, test_func_site_calls);
    ("symtab build ok", `Quick, test_symtab_build_ok);
    ("symtab duplicate", `Quick, test_symtab_duplicate);
    ("symtab undefined", `Quick, test_symtab_undefined);
    ("symtab local visibility", `Quick, test_symtab_local_not_exported);
    ("callgraph edges", `Quick, test_callgraph_edges);
    ("callgraph bottom-up order", `Quick, test_callgraph_bottom_up);
    ("callgraph self cycle", `Quick, test_callgraph_cycle);
    ("callgraph mutual cycle", `Quick, test_callgraph_mutual_cycle);
    ("callgraph skips intrinsics", `Quick, test_callgraph_intrinsics_skipped);
    ("verify clean program", `Quick, test_verify_clean);
    ("verify missing branch target", `Quick, test_verify_missing_target);
    ("verify bad register", `Quick, test_verify_bad_register);
    ("verify duplicate call site", `Quick, test_verify_duplicate_site);
    ("verify intrinsic arity", `Quick, test_verify_intrinsic_arity);
    ("verify empty function", `Quick, test_verify_empty_function);
    ("ilcodec func roundtrip", `Quick, test_codec_func_roundtrip);
    ("ilcodec module behaviour preserved", `Quick, test_codec_module_roundtrip_behaviour);
    ("ilcodec module structure preserved", `Quick, test_codec_module_roundtrip_structure);
    ("ilcodec compacted much smaller", `Quick, test_codec_compacted_smaller);
    ("ilcodec corrupt rejected", `Quick, test_codec_corrupt_rejected);
    ("ilcodec preserves profile annotations", `Quick, test_codec_preserves_freq_and_counts);
    ("size monotone", `Quick, test_size_monotone_in_instrs);
    ("size derived fraction", `Quick, test_size_derived_fraction);
    ("interp arithmetic", `Quick, test_interp_arith);
    ("interp globals", `Quick, test_interp_globals);
    ("interp print order", `Quick, test_interp_print_order);
    ("interp arg input", `Quick, test_interp_arg_input);
    ("interp arg empty input", `Quick, test_interp_arg_empty_input);
    ("interp cross-module call", `Quick, test_interp_cross_module_call);
    ("interp recursion", `Quick, test_interp_recursion);
    ("interp fuel exhaustion", `Quick, test_interp_fuel_exhaustion);
    ("interp depth limit", `Quick, test_interp_depth_limit);
    ("interp out-of-bounds", `Quick, test_interp_oob_trapped);
    ("interp probe counters", `Quick, test_interp_probe_counters);
    ("interp counts steps", `Quick, test_interp_steps_counted);
  ]
