(* Shared helpers for the test suites: MiniC snippets, tiny IL
   builders, and outcome comparison. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp

let compile ?(name = "test") source =
  Cmo_frontend.Frontend.compile_exn ~module_name:name source

let compile_all sources =
  List.map (fun (name, src) -> compile ~name src) sources

let run ?input modules = Interp.run ?input modules

let run_main ?input source = run ?input [ compile source ]

(* A function [name(a, b) = a*2 + b] built directly in IL. *)
let make_linear_func ?(linkage = Func.Exported) name =
  let f = Func.create ~name ~arity:2 ~linkage in
  let t1 = Func.new_reg f in
  let t2 = Func.new_reg f in
  let b =
    Func.add_block f
      [
        Instr.Binop (Instr.Mul, t1, Instr.Reg 0, Instr.Imm 2L);
        Instr.Binop (Instr.Add, t2, Instr.Reg t1, Instr.Reg 1);
      ]
      (Instr.Ret (Some (Instr.Reg t2)))
  in
  f.Func.entry <- b.Func.label;
  f.Func.src_lines <- 3;
  f

let outcome_testable =
  let pp ppf (o : Interp.outcome) =
    Format.fprintf ppf "ret=%Ld output=[%a]" o.Interp.ret
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf v -> Format.fprintf ppf "%Ld" v))
      o.Interp.output
  in
  let eq (a : Interp.outcome) (b : Interp.outcome) =
    Int64.equal a.Interp.ret b.Interp.ret && a.Interp.output = b.Interp.output
  in
  Alcotest.testable pp eq

(* Check two program variants have identical observable behaviour. *)
let check_same_behaviour ?input msg modules_a modules_b =
  let a = run ?input modules_a in
  let b = run ?input modules_b in
  Alcotest.check outcome_testable msg a b
