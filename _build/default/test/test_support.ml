(* Tests for the support substrate: PRNG determinism and
   distributions, interning, the binary codec, and statistics. *)

module Prng = Cmo_support.Prng
module Intern = Cmo_support.Intern
module Codec = Cmo_support.Codec
module Stats = Cmo_support.Stats

let test_prng_deterministic () =
  let a = Prng.create 42 in
  let b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 in
  let b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  (* Splitting must not produce the parent's next values. *)
  let c1 = Prng.next_int64 child in
  let p1 = Prng.next_int64 a in
  Alcotest.(check bool) "child differs from parent" true (not (Int64.equal c1 p1))

let test_prng_copy () =
  let a = Prng.create 13 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_int_bounds () =
  let t = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in_bounds () =
  let t = Prng.create 6 in
  for _ = 1 to 1000 do
    let v = Prng.int_in t (-3) 9 in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 9)
  done

let test_prng_float_bounds () =
  let t = Prng.create 8 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_chance_extremes () =
  let t = Prng.create 9 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Prng.chance t 1.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 always false" false (Prng.chance t 0.0)
  done

let test_prng_choose_weighted () =
  let t = Prng.create 10 in
  (* Zero-weight items must never be chosen. *)
  let items = [| ("a", 0.0); ("b", 1.0); ("c", 0.0) |] in
  for _ = 1 to 200 do
    Alcotest.(check string) "only positive weight" "b"
      (Prng.choose_weighted t items)
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create 11 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_zipf_skew () =
  let t = Prng.create 12 in
  let counts = Array.make 20 0 in
  for _ = 1 to 20_000 do
    let r = Prng.zipf t ~n:20 ~s:1.2 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates rank 10" true
    (counts.(0) > 3 * counts.(10));
  Alcotest.(check bool) "all ranks in range" true
    (Array.for_all (fun c -> c >= 0) counts)

let test_intern_roundtrip () =
  let t = Intern.create () in
  let a = Intern.intern t "alpha" in
  let b = Intern.intern t "beta" in
  Alcotest.(check int) "dense from zero" 0 a;
  Alcotest.(check int) "second id" 1 b;
  Alcotest.(check int) "idempotent" a (Intern.intern t "alpha");
  Alcotest.(check string) "inverse" "beta" (Intern.name t b);
  Alcotest.(check int) "count" 2 (Intern.count t)

let test_intern_find_opt () =
  let t = Intern.create () in
  Alcotest.(check (option int)) "missing" None (Intern.find_opt t "x");
  let id = Intern.intern t "x" in
  Alcotest.(check (option int)) "found" (Some id) (Intern.find_opt t "x")

let test_intern_growth () =
  let t = Intern.create () in
  for i = 0 to 499 do
    Alcotest.(check int) "dense ids" i (Intern.intern t (string_of_int i))
  done;
  for i = 0 to 499 do
    Alcotest.(check string) "inverse survives growth" (string_of_int i)
      (Intern.name t i)
  done

let test_intern_bad_id () =
  let t = Intern.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Intern.name: unknown id")
    (fun () -> ignore (Intern.name t 3))

let test_codec_ints () =
  let w = Codec.Writer.create () in
  let values = [ 0; 1; -1; 63; -64; 127; 128; -12345; 1 lsl 40; -(1 lsl 40) ] in
  List.iter (Codec.Writer.varint w) values;
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  List.iter
    (fun v -> Alcotest.(check int) "varint roundtrip" v (Codec.Reader.varint r))
    values;
  Alcotest.(check bool) "consumed all" true (Codec.Reader.at_end r)

let test_codec_uvarint_compact () =
  let w = Codec.Writer.create () in
  Codec.Writer.uvarint w 5;
  Alcotest.(check int) "small value is one byte" 1 (Codec.Writer.length w)

let test_codec_int64 () =
  let w = Codec.Writer.create () in
  let values = [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 123456789L ] in
  List.iter (Codec.Writer.int64 w) values;
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  List.iter
    (fun v -> Alcotest.(check int64) "int64 roundtrip" v (Codec.Reader.int64 r))
    values

let test_codec_string_list () =
  let w = Codec.Writer.create () in
  Codec.Writer.list w (Codec.Writer.string w) [ "a"; ""; "hello world" ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check (list string))
    "list roundtrip"
    [ "a"; ""; "hello world" ]
    (Codec.Reader.list r Codec.Reader.string)

let test_codec_float () =
  let w = Codec.Writer.create () in
  List.iter (Codec.Writer.float w) [ 0.0; -1.5; 3.14159; infinity ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0)) "float roundtrip" v (Codec.Reader.float r))
    [ 0.0; -1.5; 3.14159; infinity ]

let test_codec_truncation_detected () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "hello";
  let bytes = Codec.Writer.contents w in
  let truncated = String.sub bytes 0 (String.length bytes - 2) in
  let r = Codec.Reader.of_string truncated in
  Alcotest.(check bool) "raises Corrupt" true
    (try
       ignore (Codec.Reader.string r);
       false
     with Codec.Reader.Corrupt _ -> true)

let test_codec_bad_bool () =
  let r = Codec.Reader.of_string "\x07" in
  Alcotest.(check bool) "raises Corrupt" true
    (try
       ignore (Codec.Reader.bool r);
       false
     with Codec.Reader.Corrupt _ -> true)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"codec varint roundtrips any int" ~count:500
    QCheck.int (fun v ->
      let w = Codec.Writer.create () in
      Codec.Writer.varint w v;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      Codec.Reader.varint r = v)

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"codec string roundtrips any string" ~count:200
    QCheck.string (fun s ->
      let w = Codec.Writer.create () in
      Codec.Writer.string w s;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      Codec.Reader.string r = s)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean [||])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.percentile xs 100.0)

let test_stats_min_max () =
  let mn, mx = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  Alcotest.(check (float 1e-9)) "min" (-1.0) mn;
  Alcotest.(check (float 1e-9)) "max" 7.0 mx

let test_stats_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 2.0 (Stats.ratio 4.0 2.0);
  Alcotest.(check (float 1e-9)) "zero denominator" 0.0 (Stats.ratio 4.0 0.0)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seeds differ", `Quick, test_prng_seeds_differ);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng copy replays", `Quick, test_prng_copy);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int_in bounds", `Quick, test_prng_int_in_bounds);
    ("prng float bounds", `Quick, test_prng_float_bounds);
    ("prng chance extremes", `Quick, test_prng_chance_extremes);
    ("prng choose_weighted zero weights", `Quick, test_prng_choose_weighted);
    ("prng shuffle is permutation", `Quick, test_prng_shuffle_permutation);
    ("prng zipf is skewed", `Quick, test_prng_zipf_skew);
    ("intern roundtrip", `Quick, test_intern_roundtrip);
    ("intern find_opt", `Quick, test_intern_find_opt);
    ("intern growth", `Quick, test_intern_growth);
    ("intern bad id", `Quick, test_intern_bad_id);
    ("codec varint values", `Quick, test_codec_ints);
    ("codec small uvarint compact", `Quick, test_codec_uvarint_compact);
    ("codec int64", `Quick, test_codec_int64);
    ("codec string list", `Quick, test_codec_string_list);
    ("codec float", `Quick, test_codec_float);
    ("codec truncation detected", `Quick, test_codec_truncation_detected);
    ("codec bad bool", `Quick, test_codec_bad_bool);
    QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_string_roundtrip;
    ("stats mean", `Quick, test_stats_mean);
    ("stats geomean", `Quick, test_stats_geomean);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats min_max", `Quick, test_stats_min_max);
    ("stats ratio", `Quick, test_stats_ratio);
  ]
