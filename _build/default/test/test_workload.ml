(* Tests for the synthetic workload generator: determinism, structural
   properties, and full end-to-end compile-and-run at every
   optimization level on a generated benchmark. *)

module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Interp = Cmo_il.Interp
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Vm = Cmo_vm.Vm

let sources_of cfg =
  List.map
    (fun (name, text) -> { Pipeline.name; text })
    (Genprog.generate cfg)

let small_cfg =
  {
    Genprog.name = "unit";
    seed = 42;
    modules = 8;
    hot_modules = 3;
    funcs_per_module = (4, 8);
    hot_weight = 88;
    main_iters = 300;
    leaf_iters = (4, 10);
    tiny_leaf_percent = 35;
  }

let test_generator_deterministic () =
  let a = Genprog.generate small_cfg in
  let b = Genprog.generate small_cfg in
  Alcotest.(check bool) "same sources" true (a = b)

let test_generator_seed_changes_program () =
  let a = Genprog.generate small_cfg in
  let b = Genprog.generate { small_cfg with Genprog.seed = 43 } in
  Alcotest.(check bool) "different sources" true (a <> b)

let test_generator_module_count () =
  let sources = Genprog.generate small_cfg in
  Alcotest.(check int) "main + modules" 9 (List.length sources);
  Alcotest.(check string) "main first" "main_mod" (fst (List.hd sources))

let test_generated_program_compiles_and_verifies () =
  let modules = Pipeline.frontend (sources_of small_cfg) in
  Alcotest.(check int) "frontend ok" 9 (List.length modules);
  ignore modules

let test_generated_program_runs () =
  let modules = Pipeline.frontend (sources_of small_cfg) in
  let o = Interp.run ~input:(Genprog.reference_input small_cfg) modules in
  Alcotest.(check bool) "produces output" true (o.Interp.output <> [])

let test_generated_hot_cold_split () =
  (* Train, then check execution is concentrated: hot-module blocks
     must account for the overwhelming majority of counts. *)
  let modules = Pipeline.frontend (sources_of small_cfg) in
  let db = Cmo_profile.Db.create () in
  let _ =
    Cmo_profile.Train.run ~input:(Genprog.training_input small_cfg) modules db
  in
  let hot_names = [ "m000"; "m001"; "m002" ] in
  let is_hot_func f =
    List.exists (fun m -> String.length f >= 4 && String.sub f 0 4 = m) hot_names
  in
  let hot, total =
    List.fold_left
      (fun (hot, total) (k, v) ->
        match k with
        | Cmo_profile.Db.Block (f, _) ->
          ((if is_hot_func f || f = "main" then hot +. v else hot), total +. v)
        | _ -> (hot, total))
      (0.0, 0.0)
      (Cmo_profile.Db.entries db)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hot fraction %.2f > 0.7" (hot /. total))
    true
    (hot /. total > 0.7)

let test_source_lines_counts () =
  let sources = Genprog.generate small_cfg in
  Alcotest.(check bool) "plausible line count" true
    (Genprog.source_lines sources > 100)

let test_scale () =
  let doubled = Genprog.scale small_cfg 2.0 in
  Alcotest.(check int) "modules doubled" 16 doubled.Genprog.modules;
  let halved = Genprog.scale small_cfg 0.5 in
  Alcotest.(check int) "modules halved" 4 halved.Genprog.modules;
  Alcotest.(check bool) "hot modules scale" true
    (halved.Genprog.hot_modules >= 1)

let test_suite_shapes () =
  Alcotest.(check int) "8 SPEC personalities" 8 (List.length Suite.spec);
  Alcotest.(check int) "3 MCAD personalities" 3 (List.length Suite.mcad);
  List.iter
    (fun (name, cfg) ->
      Alcotest.(check string) "name matches" name cfg.Genprog.name;
      Alcotest.(check bool) "hot subset" true
        (cfg.Genprog.hot_modules <= cfg.Genprog.modules))
    Suite.all;
  (* MCAD personalities are much larger than SPEC ones. *)
  let lines name =
    Genprog.source_lines (Genprog.generate (Suite.find name))
  in
  Alcotest.(check bool) "mcad1 >> compress" true
    (lines "mcad1" > 10 * lines "compress")

let test_evolve_locality () =
  let v0 = Genprog.generate small_cfg in
  let v1 = Genprog.evolve small_cfg ~changed:[ 2; 5 ] ~evolution:1 in
  List.iter2
    (fun (n0, t0) (n1, t1) ->
      Alcotest.(check string) "same module names" n0 n1;
      let should_change = n0 = "m002" || n0 = "m005" in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s" n0 (if should_change then "changed" else "identical"))
        should_change (t0 <> t1))
    v0 v1

let test_evolve_rounds_differ () =
  let v1 = Genprog.evolve small_cfg ~changed:[ 1 ] ~evolution:1 in
  let v2 = Genprog.evolve small_cfg ~changed:[ 1 ] ~evolution:2 in
  Alcotest.(check bool) "evolution rounds differ" true (v1 <> v2)

let test_evolved_program_runs_with_stale_profile () =
  (* The paper: old profile data can be used with new code.  The
     evolved program must compile and behave correctly when optimized
     with the profile of its previous version. *)
  let stale_db =
    Pipeline.train ~inputs:[ Genprog.training_input small_cfg ]
      (sources_of small_cfg)
  in
  let evolved =
    List.map
      (fun (name, text) -> { Pipeline.name; text })
      (Genprog.evolve small_cfg ~changed:[ 0; 3 ] ~evolution:1)
  in
  let input = Genprog.reference_input small_cfg in
  let expected = Interp.run ~input (Pipeline.frontend evolved) in
  let build = Pipeline.compile ~profile:stale_db Options.o4_pbo evolved in
  let o = Pipeline.run ~input build in
  Alcotest.(check int64) "stale-profile build correct" expected.Interp.ret
    o.Vm.ret;
  Alcotest.(check (list int64)) "same output" expected.Interp.output o.Vm.output

let test_end_to_end_all_levels () =
  let sources = sources_of small_cfg in
  let input = Genprog.reference_input small_cfg in
  let expected = Interp.run ~input (Pipeline.frontend sources) in
  let db =
    Pipeline.train ~inputs:[ Genprog.training_input small_cfg ] sources
  in
  List.iter
    (fun (label, options, profile) ->
      let build = Pipeline.compile ?profile options sources in
      let o = Pipeline.run ~input build in
      Alcotest.(check int64) (label ^ " ret") expected.Interp.ret o.Vm.ret;
      Alcotest.(check (list int64)) (label ^ " output") expected.Interp.output
        o.Vm.output)
    [
      ("O1", Options.o1, None);
      ("O2", Options.o2, None);
      ("O2+P", Options.o2_pbo, Some db);
      ("O4", Options.o4, None);
      ("O4+P", Options.o4_pbo, Some db);
      ("O4+P sel 20", Options.o4_pbo_selective 20.0, Some db);
      ("O4+P sel 5", Options.o4_pbo_selective 5.0, Some db);
    ]

let test_end_to_end_speedup_ordering () =
  let sources = sources_of small_cfg in
  let input = Genprog.reference_input small_cfg in
  let db =
    Pipeline.train ~inputs:[ Genprog.training_input small_cfg ] sources
  in
  let cycles options profile =
    let build = Pipeline.compile ?profile options sources in
    (Pipeline.run ~input build).Vm.cycles
  in
  let o2 = cycles Options.o2 None in
  let o4p = cycles Options.o4_pbo (Some db) in
  Alcotest.(check bool)
    (Printf.sprintf "O4+P %d < O2 %d" o4p o2)
    true (o4p < o2)

let suite =
  [
    ("generator deterministic", `Quick, test_generator_deterministic);
    ("generator seed sensitivity", `Quick, test_generator_seed_changes_program);
    ("generator module count", `Quick, test_generator_module_count);
    ("generated program verifies", `Quick, test_generated_program_compiles_and_verifies);
    ("generated program runs", `Quick, test_generated_program_runs);
    ("generated hot/cold split", `Quick, test_generated_hot_cold_split);
    ("source line counting", `Quick, test_source_lines_counts);
    ("config scaling", `Quick, test_scale);
    ("suite shapes", `Quick, test_suite_shapes);
    ("evolve is module-local", `Quick, test_evolve_locality);
    ("evolve rounds differ", `Quick, test_evolve_rounds_differ);
    ("evolved + stale profile correct", `Quick, test_evolved_program_runs_with_stale_profile);
    ("end-to-end all levels", `Quick, test_end_to_end_all_levels);
    ("end-to-end speedup", `Quick, test_end_to_end_speedup_ordering);
  ]
