(* Tests for the low-level optimizer: block layout, instruction
   selection, register allocation, peephole, and code emission.  Most
   checks are differential: MiniC source is compiled through the real
   LLO, linked, executed on the VM, and compared against the IL
   reference interpreter. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp
module Mach = Cmo_llo.Mach
module Layout = Cmo_llo.Layout
module Isel = Cmo_llo.Isel
module Regalloc = Cmo_llo.Regalloc
module Peephole = Cmo_llo.Peephole
module Codegen = Cmo_llo.Codegen
module Llo = Cmo_llo.Llo
module Objfile = Cmo_link.Objfile
module Linker = Cmo_link.Linker
module Vm = Cmo_vm.Vm
module Db = Cmo_profile.Db
module Train = Cmo_profile.Train
module Correlate = Cmo_profile.Correlate

(* Compile modules through LLO and link them. *)
let link_modules ?(layout = false) modules =
  let objects =
    List.map
      (fun (m : Ilmod.t) ->
        let codes, _ = Llo.compile_module ~layout m in
        Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
          ~source_digest:"" codes)
      modules
  in
  match Linker.link objects with
  | Ok image -> image
  | Error errs ->
    Alcotest.failf "link failed: %a"
      (Format.pp_print_list Linker.pp_error)
      errs

(* Differential check: VM result equals interpreter result. *)
let check_vm_matches_interp ?(input = [||]) ?(layout = false) sources =
  let modules = Helpers.compile_all sources in
  let expected = Interp.run ~input modules in
  let image = link_modules ~layout modules in
  let actual = Vm.run ~input image in
  Alcotest.(check int64) "same return value" expected.Interp.ret actual.Vm.ret;
  Alcotest.(check (list int64)) "same output" expected.Interp.output
    actual.Vm.output;
  actual

let simple main_body = [ ("m", "func main() { " ^ main_body ^ " }") ]

(* ---------- differential execution ---------- *)

let test_exec_arith () =
  ignore (check_vm_matches_interp (simple "return 2 + 3 * 4 - 1;"))

let test_exec_all_binops () =
  ignore
    (check_vm_matches_interp
       (simple
          {|
          var a = 29; var b = 3;
          print(a + b); print(a - b); print(a * b); print(a / b);
          print(a % b); print(a & b); print(a | b); print(a ^ b);
          print(a << b); print(a >> b);
          print(a == b); print(a != b); print(a < b); print(a <= b);
          print(a > b); print(a >= b);
          print(-a); print(!a); print(!0);
          return 0;
          |}))

let test_exec_div_by_zero () =
  ignore (check_vm_matches_interp (simple "print(7 / 0); print(7 % 0); return 0;"))

let test_exec_negative_div () =
  ignore
    (check_vm_matches_interp
       (simple "print(-7 / 2); print(-7 % 2); print(-8 >> 1); return 0;"))

let test_exec_globals_and_arrays () =
  ignore
    (check_vm_matches_interp
       [
         ( "m",
           {|
           global s;
           global t[10] = {9, 8, 7};
           func main() {
             var i = 0;
             while (i < 10) { t[i] = t[i] + i; i = i + 1; }
             s = t[0] * 100 + t[1] * 10 + t[9];
             print(s);
             return s;
           }
           |} );
       ])

let test_exec_calls () =
  ignore
    (check_vm_matches_interp
       [
         ( "a",
           {|
           func main() {
             var x = add3(1, 2, 3);
             var y = fib(10);
             print(x); print(y);
             return x + y;
           }
           func add3(p, q, r) { return p + q + r; }
           |} );
         ( "b",
           {|
           func fib(n) {
             if (n < 2) { return n; }
             return fib(n - 1) + fib(n - 2);
           }
           |} );
       ])

let test_exec_many_args_stack () =
  (* 6 arguments: two go on the stack. *)
  ignore
    (check_vm_matches_interp
       [
         ( "m",
           {|
           func wide(a, b, c, d, e, f) {
             return a + b * 10 + c * 100 + d * 1000 + e * 10000 + f * 100000;
           }
           func main() { return wide(1, 2, 3, 4, 5, 6); }
           |} );
       ])

let test_exec_input () =
  ignore
    (check_vm_matches_interp ~input:[| 11L; 22L; 33L |]
       (simple "return arg(0) + arg(1) * arg(2) + arg(5);"))

let test_exec_register_pressure () =
  (* More than 20 simultaneously-live values forces spilling; the
     result must be unchanged. *)
  let vars =
    List.init 30 (fun i -> Printf.sprintf "var v%d = arg(%d) + %d;" i i i)
  in
  let sum =
    List.init 30 (fun i -> Printf.sprintf "v%d" i) |> String.concat " + "
  in
  let src =
    Printf.sprintf "func main() { %s print(%s); return %s; }"
      (String.concat " " vars) sum sum
  in
  let input = Array.init 8 (fun i -> Int64.of_int (i * 3)) in
  ignore (check_vm_matches_interp ~input [ ("m", src) ])

let test_exec_deep_calls_and_spills () =
  ignore
    (check_vm_matches_interp
       [
         ( "m",
           {|
           func mix(a, b) {
             var x = a * 3 + b;
             var y = helper(x, a) + helper(b, x);
             var z = x * y - a + b;
             return z + helper(z, y);
           }
           func helper(p, q) { return p * 2 - q; }
           func main() {
             var acc = 0;
             var i = 0;
             while (i < 20) { acc = acc + mix(i, acc % 7); i = i + 1; }
             return acc;
           }
           |} );
       ])

let test_exec_static_functions () =
  ignore
    (check_vm_matches_interp
       [
         ("a", "static func sq(x) { return x * x; } func main() { return sq(7) + other(); }");
         ("b", "static func sq(x) { return x + 1; } func other() { return sq(4); }");
       ])

(* ---------- layout ---------- *)

let profile_annotated_main () =
  let src =
    {|
    func main() {
      var s = 0;
      var i = 0;
      while (i < 1000) {
        if (i % 100 == 0) { s = s + rare(i); } else { s = s + 1; }
        i = i + 1;
      }
      return s;
    }
    func rare(x) { return x * 2; }
    |}
  in
  let m = Helpers.compile src in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  ignore (Correlate.annotate db [ m ]);
  m

let test_layout_reorders_cold_blocks () =
  let m = profile_annotated_main () in
  let main = Option.get (Ilmod.find_func m "main") in
  let before = List.map (fun (b : Func.block) -> b.Func.label) main.Func.blocks in
  let changed = Layout.run main in
  let after = List.map (fun (b : Func.block) -> b.Func.label) main.Func.blocks in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "same set of blocks" true
    (List.sort compare before = List.sort compare after);
  Alcotest.(check int) "entry still first" main.Func.entry (List.hd after)

let test_layout_preserves_behaviour () =
  let m = profile_annotated_main () in
  let expected = Interp.run [ m ] in
  let main = Option.get (Ilmod.find_func m "main") in
  ignore (Layout.run main);
  let got = Interp.run [ m ] in
  Alcotest.(check int64) "layout is pure reordering" expected.Interp.ret
    got.Interp.ret

let test_layout_no_profile_no_change () =
  let m = Helpers.compile "func main() { if (arg(0)) { return 1; } return 2; }" in
  let main = Option.get (Ilmod.find_func m "main") in
  Alcotest.(check bool) "no profile, no reorder" false (Layout.run main)

let test_layout_reduces_taken_branches () =
  (* With profile-guided layout the hot loop should fall through more
     often than with frontend order. *)
  let run_with layout =
    let m = profile_annotated_main () in
    let image = link_modules ~layout [ m ] in
    Vm.run image
  in
  let plain = run_with false in
  let positioned = run_with true in
  Alcotest.(check int64) "same result" plain.Vm.ret positioned.Vm.ret;
  Alcotest.(check bool)
    (Printf.sprintf "taken branches reduced: %d <= %d"
       positioned.Vm.taken_branches plain.Vm.taken_branches)
    true
    (positioned.Vm.taken_branches <= plain.Vm.taken_branches)

(* ---------- isel / regalloc / codegen units ---------- *)

let test_isel_uses_opi_for_immediates () =
  let m = Helpers.compile "func f(x) { return x + 5; } func main() { return f(1); }" in
  let f = Option.get (Ilmod.find_func m "f") in
  let vc = Isel.select ~module_name:"m" f in
  let has_opi =
    List.exists
      (fun (b : Isel.vblock) ->
        List.exists
          (fun i -> match i with Mach.Opi (Instr.Add, _, _, 5L) -> true | _ -> false)
          b.Isel.body)
      vc.Isel.vblocks
  in
  Alcotest.(check bool) "add immediate selected as Opi" true has_opi

let test_isel_outgoing_args_tracked () =
  let m =
    Helpers.compile
      "func f(a,b,c,d,e,f2) { return a+f2; } func main() { return f(1,2,3,4,5,6); }"
  in
  let main = Option.get (Ilmod.find_func m "main") in
  let vc = Isel.select ~module_name:"m" main in
  Alcotest.(check int) "two stack args" 2 vc.Isel.max_outgoing

let test_regalloc_no_vregs_left () =
  let m = profile_annotated_main () in
  List.iter
    (fun f ->
      let vc = Isel.select ~module_name:"m" f in
      let result = Regalloc.run vc in
      List.iter
        (fun (b : Isel.vblock) ->
          List.iter
            (fun i ->
              List.iter
                (fun r ->
                  Alcotest.(check bool)
                    (Printf.sprintf "r%d is physical" r)
                    true (r < Mach.first_vreg))
                (Mach.defs i @ Mach.uses i))
            b.Isel.body)
        result.Regalloc.vcode.Isel.vblocks)
    m.Ilmod.funcs

let test_regalloc_spills_under_pressure () =
  let vars = List.init 30 (fun i -> Printf.sprintf "var v%d = arg(%d);" i i) in
  let sum = List.init 30 (fun i -> Printf.sprintf "v%d" i) |> String.concat " + " in
  let src = Printf.sprintf "func main() { %s return %s; }" (String.concat " " vars) sum in
  let m = Helpers.compile src in
  let main = Option.get (Ilmod.find_func m "main") in
  let vc = Isel.select ~module_name:"m" main in
  let result = Regalloc.run vc in
  Alcotest.(check bool) "spilled something" true (result.Regalloc.spilled_vregs > 0);
  Alcotest.(check bool) "slots allocated" true (result.Regalloc.spill_slots > 0)

let test_regalloc_weighted_spill_prefers_hot () =
  (* Under register pressure with profile data, the hot loop's working
     registers must stay in registers; the profiled build cannot be
     slower than the unprofiled one on the same pressure-heavy
     program. *)
  let vars = List.init 26 (fun i -> Printf.sprintf "var v%d = arg(%d);" i i) in
  let sum = List.init 26 (fun i -> Printf.sprintf "v%d" i) |> String.concat " + " in
  let src =
    Printf.sprintf
      {|
      func main() {
        %s
        var acc = 0;
        var i = 0;
        while (i < 500) { acc = (acc + i * 3) & 65535; i = i + 1; }
        return acc + ((%s) & 255);
      }
      |}
      (String.concat " " vars) sum
  in
  let input = Array.init 26 (fun i -> Int64.of_int i) in
  let m () = Helpers.compile src in
  (* Unprofiled. *)
  let plain = link_modules [ m () ] in
  let plain_run = Vm.run ~input plain in
  (* Profiled: annotate, then regenerate code (weights flow into the
     allocator through block frequencies). *)
  let profiled_module = m () in
  let db = Db.create () in
  let _ = Train.run ~input [ profiled_module ] db in
  ignore (Correlate.annotate db [ profiled_module ]);
  let prof = link_modules [ profiled_module ] in
  let prof_run = Vm.run ~input prof in
  Alcotest.(check int64) "same result" plain_run.Vm.ret prof_run.Vm.ret;
  Alcotest.(check bool)
    (Printf.sprintf "profiled not slower: %d <= %d" prof_run.Vm.cycles
       plain_run.Vm.cycles)
    true
    (prof_run.Vm.cycles <= plain_run.Vm.cycles)

let test_codegen_frame_only_when_needed () =
  let m = Helpers.compile "func tiny(x) { return x; } func main() { return tiny(1); }" in
  let tiny = Option.get (Ilmod.find_func m "tiny") in
  let code = Llo.compile_func ~module_name:"m" tiny in
  let has_adjsp =
    Array.exists (function Mach.Adjsp _ -> true | _ -> false) code.Mach.code
  in
  Alcotest.(check bool) "leaf needs no frame" false has_adjsp

let test_codegen_fallthrough_elision () =
  let m =
    Helpers.compile "func main() { var a = arg(0); if (a) { a = a + 1; } return a; }"
  in
  let main = Option.get (Ilmod.find_func m "main") in
  let code = Llo.compile_func ~module_name:"m" main in
  (* There must be at most one unconditional B (over the if join);
     naive emission without elision would produce more. *)
  let bs =
    Array.to_list code.Mach.code
    |> List.filter (function Mach.B _ -> true | _ -> false)
  in
  Alcotest.(check bool) "fallthroughs elided" true (List.length bs <= 1)

let test_peephole_strength_reduction () =
  let m = Helpers.compile "func f(x) { return x * 8; } func main() { return f(3); }" in
  let f = Option.get (Ilmod.find_func m "f") in
  let vc = Isel.select ~module_name:"m" f in
  let result = Regalloc.run vc in
  let n = Peephole.run result.Regalloc.vcode in
  Alcotest.(check bool) "rewrote multiply" true (n >= 1);
  let has_shift =
    List.exists
      (fun (b : Isel.vblock) ->
        List.exists
          (fun i ->
            match i with Mach.Opi (Instr.Shl, _, _, 3L) -> true | _ -> false)
          b.Isel.body)
      result.Regalloc.vcode.Isel.vblocks
  in
  Alcotest.(check bool) "shift present" true has_shift

let test_peephole_preserves_semantics () =
  ignore
    (check_vm_matches_interp
       (simple
          "var x = arg(0); print(x * 8); print(x * 7); print(x + 0); print(x * 1); print(x * 0); return 0;")
       ~input:[| 13L |])

let test_peephole_div_not_reduced () =
  (* -7 / 2 = -3 but -7 asr 1 = -4: division must not become a shift. *)
  ignore
    (check_vm_matches_interp ~input:[| -7L |]
       (simple "return arg(0) / 2;"))

let test_mach_codec_roundtrip () =
  let m = profile_annotated_main () in
  let f = Option.get (Ilmod.find_func m "main") in
  let code = Llo.compile_func ~module_name:"m" f in
  let decoded = Mach.decode_func (Mach.encode_func code) in
  Alcotest.(check string) "name" code.Mach.fname decoded.Mach.fname;
  Alcotest.(check int) "same length" (Array.length code.Mach.code)
    (Array.length decoded.Mach.code);
  Alcotest.(check bool) "same instructions" true (code.Mach.code = decoded.Mach.code)

let test_vm_attribution_sums_to_total () =
  let m = profile_annotated_main () in
  let image = link_modules [ m ] in
  let o = Vm.run ~attribute:true image in
  let attributed = List.fold_left (fun acc (_, c) -> acc + c) 0 o.Vm.func_cycles in
  Alcotest.(check int) "every cycle attributed" o.Vm.cycles attributed;
  Alcotest.(check bool) "main is hottest" true
    (match o.Vm.func_cycles with ("main", _) :: _ -> true | _ -> false)

let test_vm_attribution_off_by_default () =
  let m = profile_annotated_main () in
  let image = link_modules [ m ] in
  let o = Vm.run image in
  Alcotest.(check (list (pair string int))) "no attribution" [] o.Vm.func_cycles

let test_vm_dcache_counted () =
  let m =
    Helpers.compile
      {|
      global big[4096];
      func main() {
        var s = 0;
        var i = 0;
        while (i < 4096) { big[i] = i; i = i + 1; }
        i = 0;
        while (i < 4096) { s = (s + big[i]) & 65535; i = i + 1; }
        return s;
      }
      |}
  in
  let image = link_modules [ m ] in
  let o = Vm.run image in
  Alcotest.(check bool) "dcache accessed" true (o.Vm.dcache_accesses > 8000);
  (* 4096 cells / 4 cells per line, touched twice with an intervening
     full sweep of a 4096-cell array through a 4096-cell cache: the
     second sweep cannot all hit. *)
  Alcotest.(check bool) "dcache misses seen" true (o.Vm.dcache_misses >= 1024);
  let o2 = Vm.run ~costmodel:Cmo_vm.Costmodel.no_dcache image in
  Alcotest.(check int64) "same result without dcache" o.Vm.ret o2.Vm.ret;
  Alcotest.(check bool) "dcache penalty priced" true (o2.Vm.cycles < o.Vm.cycles)

let test_vm_dcache_locality_rewarded () =
  (* Sequential sweep vs large-stride sweep over the same array: the
     strided version must miss more. *)
  let prog stride =
    Printf.sprintf
      {|
      global a[8192];
      func main() {
        var s = 0;
        var i = 0;
        while (i < 8192) { s = (s + a[(i * %d) & 8191]) & 65535; i = i + 1; }
        return s;
      }
      |}
      stride
  in
  let run stride =
    let image = link_modules [ Helpers.compile (prog stride) ] in
    Vm.run image
  in
  let seq = run 1 in
  let strided = run 33 in
  Alcotest.(check bool)
    (Printf.sprintf "stride misses more: %d > %d" strided.Vm.dcache_misses
       seq.Vm.dcache_misses)
    true
    (strided.Vm.dcache_misses > seq.Vm.dcache_misses)

(* ---------- scheduler / load-use stalls ---------- *)

let test_vm_load_use_stall_priced () =
  (* [Ld; consumer] stalls; [Ld; filler; consumer] does not. *)
  let base_code tail =
    Array.of_list
      ([ Mach.Li (8, 0L);  (* address 0 *)
         Mach.Ld (9, 8, 0) ]
      @ tail
      @ [ Mach.Mv (Mach.reg_rv, 10); Mach.Halt ])
  in
  let image code =
    {
      Cmo_link.Image.code;
      entry = 0;
      funcs = [ ("main", 0, Array.length code) ];
      globals = [ ("g", 0, 1) ];
      data_init = [ (0, 21L) ];
      data_cells = 1;
    }
  in
  let stalled =
    Vm.run (image (base_code [ Mach.Opi (Instr.Add, 10, 9, 1L); Mach.Li (11, 3L) ]))
  in
  let hidden =
    Vm.run (image (base_code [ Mach.Li (11, 3L); Mach.Opi (Instr.Add, 10, 9, 1L) ]))
  in
  Alcotest.(check int64) "same value" stalled.Vm.ret hidden.Vm.ret;
  Alcotest.(check int)
    "stall costs exactly load_use_stall"
    Cmo_vm.Costmodel.default.Cmo_vm.Costmodel.load_use_stall
    (stalled.Vm.cycles - hidden.Vm.cycles)

let test_sched_fills_load_shadow () =
  (* Independent work must move between a load and its consumer. *)
  let vb =
    {
      Isel.vlabel = 0;
      body =
        [
          Mach.Lga (40, "g");
          Mach.Ld (41, 40, 0);
          Mach.Opi (Instr.Add, 42, 41, 1L);  (* consumer of the load *)
          Mach.Li (43, 9L);  (* independent *)
          Mach.Op (Instr.Mul, 44, 42, 43);
        ];
      vterm = Isel.Vret;
      vfreq = 0.0;
    }
  in
  let vc =
    {
      Isel.vname = "f";
      vmodule = "m";
      arity = 0;
      ventry = 0;
      vblocks = [ vb ];
      next_vreg = 50;
      max_outgoing = 0;
      vsrc_lines = 1;
    }
  in
  let moved = Cmo_llo.Sched.run vc in
  Alcotest.(check bool) "moved something" true (moved > 0);
  (* The consumer must no longer immediately follow the load. *)
  let rec no_adjacent_consumer = function
    | Mach.Ld (d, _, _) :: next :: rest ->
      (not (List.mem d (Mach.uses next))) && no_adjacent_consumer (next :: rest)
    | _ :: rest -> no_adjacent_consumer rest
    | [] -> true
  in
  Alcotest.(check bool) "load shadow filled" true
    (no_adjacent_consumer vb.Isel.body)

let test_sched_respects_dependences () =
  (* Scheduling through the whole backend must preserve semantics on
     a store/load-heavy function. *)
  ignore
    (check_vm_matches_interp
       [
         ( "m",
           {|
           global a[16];
           global b[16];
           func main() {
             var i = 0;
             while (i < 16) {
               a[i] = i * 3;
               b[i] = a[i] + 1;
               a[(i + 1) & 15] = b[i] * 2;
               i = i + 1;
             }
             var s = 0;
             i = 0;
             while (i < 16) { s = (s + a[i] * 5 + b[i]) & 65535; i = i + 1; }
             print(s);
             return s;
           }
           |} );
       ])

let test_sched_barriers_hold_call_order () =
  (* Argument setup and print ordering must survive scheduling. *)
  ignore
    (check_vm_matches_interp
       [
         ( "m",
           {|
           func f(x, y) { print(x); print(y); return x - y; }
           func main() {
             var r = f(1, 2) + f(3, 4);
             print(r);
             return r;
           }
           |} );
       ])

(* ---------- assembler ---------- *)

let test_asm_roundtrip_generated_module () =
  (* Print-then-parse is the identity on real compiled code. *)
  let m =
    Helpers.compile ~name:"asmmod"
      {|
      global table[8] = {4, 0, 15};
      static global secret = 9;
      func work(a, b, c, d, e) {
        var s = secret;
        var i = 0;
        while (i < a) { s = (s + table[i & 7] * b) & 65535; i = i + 1; }
        if (s > c) { print(s); }
        return s + d - e;
      }
      func main() { return work(5, 3, 10, 2, 1); }
      |}
  in
  let globals = m.Ilmod.globals in
  let codes, _ = Llo.compile_module m in
  let text =
    Format.asprintf "%t"
      (fun ppf ->
        Cmo_llo.Asm.print_module ppf ~module_name:"asmmod" ~globals codes)
  in
  let name, globals', codes' = Cmo_llo.Asm.parse_module text in
  Alcotest.(check string) "module name" "asmmod" name;
  Alcotest.(check int) "global count" (List.length globals) (List.length globals');
  List.iter2
    (fun (g : Ilmod.global) (g' : Ilmod.global) ->
      Alcotest.(check string) "gname" g.Ilmod.gname g'.Ilmod.gname;
      Alcotest.(check int) "gsize" g.Ilmod.size g'.Ilmod.size;
      Alcotest.(check bool) "gexport" g.Ilmod.exported g'.Ilmod.exported;
      Alcotest.(check bool) "ginit" true (g.Ilmod.init = g'.Ilmod.init))
    globals globals';
  List.iter2
    (fun (c : Mach.func_code) (c' : Mach.func_code) ->
      Alcotest.(check string) "fname" c.Mach.fname c'.Mach.fname;
      Alcotest.(check int) "src lines" c.Mach.src_lines c'.Mach.src_lines;
      Alcotest.(check bool) "identical code" true (c.Mach.code = c'.Mach.code))
    codes codes'

let test_asm_reassembled_object_links_and_runs () =
  let m = Helpers.compile ~name:"mm" "global g = 5; func main() { g = g * 8 + 2; return g; }" in
  let expected = (Interp.run [ Helpers.compile ~name:"mm" "global g = 5; func main() { g = g * 8 + 2; return g; }" ]).Interp.ret in
  let globals = m.Ilmod.globals in
  let codes, _ = Llo.compile_module m in
  let text =
    Format.asprintf "%t"
      (fun ppf -> Cmo_llo.Asm.print_module ppf ~module_name:"mm" ~globals codes)
  in
  let name, globals', codes' = Cmo_llo.Asm.parse_module text in
  let obj =
    Objfile.of_code ~module_name:name ~globals:globals' ~source_digest:"" codes'
  in
  match Linker.link [ obj ] with
  | Ok image ->
    Alcotest.(check int64) "reassembled runs right" expected (Vm.run image).Vm.ret
  | Error _ -> Alcotest.fail "link failed"

let test_asm_parse_errors () =
  let bad text expect_line =
    try
      ignore (Cmo_llo.Asm.parse_module text);
      Alcotest.failf "accepted %S" text
    with Cmo_llo.Asm.Parse_error (line, _) ->
      Alcotest.(check int) "error line" expect_line line
  in
  bad ".module m
.func f
  fly r1, r2
.end" 3;
  bad ".module m
.func f
  li r99, 5
.end" 3;
  bad ".module m
.func f
  li r1, 5
" 4;
  bad ".func f
.end" 2;
  bad ".module m
.init ghost 0 1
" 2

let test_llo_memory_charged_quadratic () =
  Alcotest.(check bool) "quadratic growth" true
    (Llo.modeled_llo_bytes 2000 > 3 * Llo.modeled_llo_bytes 1000)

let suite =
  [
    ("exec arithmetic", `Quick, test_exec_arith);
    ("exec all operators", `Quick, test_exec_all_binops);
    ("exec division by zero", `Quick, test_exec_div_by_zero);
    ("exec negative division", `Quick, test_exec_negative_div);
    ("exec globals and arrays", `Quick, test_exec_globals_and_arrays);
    ("exec cross-module calls", `Quick, test_exec_calls);
    ("exec stack arguments", `Quick, test_exec_many_args_stack);
    ("exec program input", `Quick, test_exec_input);
    ("exec register pressure", `Quick, test_exec_register_pressure);
    ("exec calls with spills", `Quick, test_exec_deep_calls_and_spills);
    ("exec static name collisions", `Quick, test_exec_static_functions);
    ("layout reorders blocks", `Quick, test_layout_reorders_cold_blocks);
    ("layout preserves behaviour", `Quick, test_layout_preserves_behaviour);
    ("layout needs profile", `Quick, test_layout_no_profile_no_change);
    ("layout reduces taken branches", `Quick, test_layout_reduces_taken_branches);
    ("isel immediate operands", `Quick, test_isel_uses_opi_for_immediates);
    ("isel outgoing args", `Quick, test_isel_outgoing_args_tracked);
    ("regalloc physical only", `Quick, test_regalloc_no_vregs_left);
    ("regalloc spills", `Quick, test_regalloc_spills_under_pressure);
    ("regalloc weighted spill", `Quick, test_regalloc_weighted_spill_prefers_hot);
    ("codegen leaf frames", `Quick, test_codegen_frame_only_when_needed);
    ("codegen fallthrough elision", `Quick, test_codegen_fallthrough_elision);
    ("peephole strength reduction", `Quick, test_peephole_strength_reduction);
    ("peephole preserves semantics", `Quick, test_peephole_preserves_semantics);
    ("peephole division untouched", `Quick, test_peephole_div_not_reduced);
    ("mach codec roundtrip", `Quick, test_mach_codec_roundtrip);
    ("vm dcache counted", `Quick, test_vm_dcache_counted);
    ("vm dcache locality", `Quick, test_vm_dcache_locality_rewarded);
    ("vm attribution sums", `Quick, test_vm_attribution_sums_to_total);
    ("vm attribution opt-in", `Quick, test_vm_attribution_off_by_default);
    ("vm load-use stall", `Quick, test_vm_load_use_stall_priced);
    ("sched fills load shadow", `Quick, test_sched_fills_load_shadow);
    ("sched respects dependences", `Quick, test_sched_respects_dependences);
    ("sched barriers hold order", `Quick, test_sched_barriers_hold_call_order);
    ("asm roundtrip", `Quick, test_asm_roundtrip_generated_module);
    ("asm reassemble and run", `Quick, test_asm_reassembled_object_links_and_runs);
    ("asm parse errors", `Quick, test_asm_parse_errors);
    ("llo memory model quadratic", `Quick, test_llo_memory_charged_quadratic);
  ]
