(* Tests for the high-level optimizer: CFG cleanup, dominators, loops,
   liveness, the scalar passes, inlining, cloning, IPA, selectivity,
   and the phase/driver plumbing.  Transformation tests check both
   that the transformation happened and that observable behaviour is
   preserved. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp
module Callgraph = Cmo_il.Callgraph
module Verify = Cmo_il.Verify
module Ilcodec = Cmo_il.Ilcodec
module Cfg = Cmo_hlo.Cfg
module Dominators = Cmo_hlo.Dominators
module Loopinfo = Cmo_hlo.Loopinfo
module Liveness = Cmo_hlo.Liveness
module Constprop = Cmo_hlo.Constprop
module Copyprop = Cmo_hlo.Copyprop
module Valnum = Cmo_hlo.Valnum
module Dce = Cmo_hlo.Dce
module Licm = Cmo_hlo.Licm
module Inline = Cmo_hlo.Inline
module Clone = Cmo_hlo.Clone
module Ipa = Cmo_hlo.Ipa
module Selectivity = Cmo_hlo.Selectivity
module Phase = Cmo_hlo.Phase
module Hlo = Cmo_hlo.Hlo
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Db = Cmo_profile.Db
module Train = Cmo_profile.Train
module Correlate = Cmo_profile.Correlate

(* ---------- helpers ---------- *)

let compile = Helpers.compile

(* Snapshot a module (deep copy) so we can compare behaviour before
   and after a transformation. *)
let snapshot m = Ilcodec.decode_module (Ilcodec.encode_module m)

let find_func m name = Option.get (Ilmod.find_func m name)

(* Apply [pass] to every function of a fresh copy; check behaviour
   unchanged and return the transformed module plus total rewrites. *)
let check_pass_preserves ?input ~pass src =
  let original = compile src in
  let transformed = snapshot original in
  let n =
    List.fold_left (fun acc f -> acc + pass f) 0 transformed.Ilmod.funcs
  in
  Helpers.check_same_behaviour ?input "pass preserves behaviour" [ original ]
    [ transformed ];
  Alcotest.(check int) "still verifies" 0
    (List.length (Verify.check_program [ transformed ]));
  (transformed, n)

let loader_of_modules ?(machine_memory = 1 lsl 30) ?forced_level modules =
  let mem = Memstats.create () in
  let config =
    {
      Loader.default_config with
      Loader.machine_memory;
      forced_level;
    }
  in
  let loader = Loader.create config mem in
  List.iter (Loader.register_module loader) modules;
  loader

(* ---------- Cfg ---------- *)

let test_cfg_fold_constant_branch () =
  let src = "func main() { if (1) { return 42; } else { return 7; } }" in
  let m, _ = check_pass_preserves ~pass:(fun f ->
      let n = Cfg.fold_constant_branches f in
      ignore (Cfg.remove_unreachable f);
      n)
    src
  in
  let main = find_func m "main" in
  (* The dead arm must be gone. *)
  let has_const_branch =
    List.exists
      (fun (b : Func.block) ->
        match b.Func.term with Instr.Br _ -> true | _ -> false)
      main.Func.blocks
  in
  Alcotest.(check bool) "no branches left" false has_const_branch

let test_cfg_merge_straightline () =
  let src = "func main() { var a = 1; var b = a + 2; return b; }" in
  let m, _ = check_pass_preserves ~pass:(fun f ->
      ignore (Cfg.simplify f);
      0)
    src
  in
  let main = find_func m "main" in
  Alcotest.(check int) "single block after simplify" 1
    (List.length main.Func.blocks)

let test_cfg_thread_jumps () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let ret = Func.add_block f [] (Instr.Ret (Some (Instr.Imm 1L))) in
  let fwd = Func.add_block f [] (Instr.Jmp ret.Func.label) in
  let entry = Func.add_block f [] (Instr.Jmp fwd.Func.label) in
  f.Func.entry <- entry.Func.label;
  let n = Cfg.thread_jumps f in
  Alcotest.(check bool) "threaded" true (n > 0);
  Alcotest.(check (list int)) "entry goes straight to ret"
    [ ret.Func.label ]
    (Instr.targets (Func.find_block f entry.Func.label).Func.term)

let test_cfg_simplify_loop_safe () =
  (* An empty infinite loop must not send jump threading into a
     cycle. *)
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let b = Func.add_block f [] (Instr.Ret None) in
  b.Func.term <- Instr.Jmp b.Func.label;
  f.Func.entry <- b.Func.label;
  ignore (Cfg.simplify f);
  Alcotest.(check bool) "terminates" true true

(* ---------- Dominators / Loops / Liveness ---------- *)

let diamond () =
  let f = Func.create ~name:"f" ~arity:1 ~linkage:Func.Exported in
  let exit_b = Func.add_block f [] (Instr.Ret (Some (Instr.Reg 0))) in
  let left = Func.add_block f [] (Instr.Jmp exit_b.Func.label) in
  let right = Func.add_block f [] (Instr.Jmp exit_b.Func.label) in
  let entry =
    Func.add_block f []
      (Instr.Br { cond = Instr.Reg 0; ifso = left.Func.label; ifnot = right.Func.label })
  in
  f.Func.entry <- entry.Func.label;
  (f, entry, left, right, exit_b)

let test_dominators_diamond () =
  let f, entry, left, right, exit_b = diamond () in
  let doms = Dominators.compute f in
  Alcotest.(check (option int)) "entry has no idom" None
    (Dominators.idom doms entry.Func.label);
  Alcotest.(check (option int)) "left idom is entry" (Some entry.Func.label)
    (Dominators.idom doms left.Func.label);
  Alcotest.(check (option int)) "exit idom is entry" (Some entry.Func.label)
    (Dominators.idom doms exit_b.Func.label);
  Alcotest.(check bool) "entry dominates all" true
    (Dominators.dominates doms entry.Func.label exit_b.Func.label);
  Alcotest.(check bool) "left does not dominate exit" false
    (Dominators.dominates doms left.Func.label exit_b.Func.label);
  Alcotest.(check bool) "dominates is reflexive" true
    (Dominators.dominates doms right.Func.label right.Func.label)

let test_loopinfo_while () =
  let m = compile "func main() { var i = 0; while (i < 9) { i = i + 1; } return i; }" in
  let main = find_func m "main" in
  let loops = Loopinfo.loops (Loopinfo.compute main) in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "depth 1" 1 l.Loopinfo.depth;
  Alcotest.(check bool) "body has blocks" true (List.length l.Loopinfo.body >= 2)

let test_loopinfo_nested () =
  let m =
    compile
      {|
      func main() {
        var i = 0; var s = 0;
        while (i < 3) {
          var j = 0;
          while (j < 3) { s = s + 1; j = j + 1; }
          i = i + 1;
        }
        return s;
      }
      |}
  in
  let main = find_func m "main" in
  let li = Loopinfo.compute main in
  let depths = List.map (fun l -> l.Loopinfo.depth) (Loopinfo.loops li) in
  Alcotest.(check (list int)) "two loops, nested" [ 1; 2 ] (List.sort compare depths)

let test_loopinfo_no_loops () =
  let m = compile "func main() { return 3; }" in
  let main = find_func m "main" in
  Alcotest.(check int) "no loops" 0
    (List.length (Loopinfo.loops (Loopinfo.compute main)))

let test_liveness_param_live_through_branch () =
  let f, entry, _, _, _ = diamond () in
  let live = Liveness.compute f in
  Alcotest.(check (list int)) "r0 live out of entry" [ 0 ]
    (Liveness.live_out live entry.Func.label)

let test_liveness_dead_def () =
  let f = Func.create ~name:"f" ~arity:0 ~linkage:Func.Exported in
  let d = Func.new_reg f in
  let b =
    Func.add_block f
      [ Instr.Move (d, Instr.Imm 5L) ]
      (Instr.Ret (Some (Instr.Imm 0L)))
  in
  f.Func.entry <- b.Func.label;
  let live = Liveness.compute f in
  Alcotest.(check (list int)) "nothing live out" []
    (Liveness.live_out live b.Func.label);
  Alcotest.(check (list int)) "nothing live in" []
    (Liveness.live_in live b.Func.label)

(* ---------- Constprop ---------- *)

let test_constprop_folds_chain () =
  let src = "func main() { var a = 2; var b = a + 3; var c = b * 4; return c; }" in
  let m, n = check_pass_preserves ~pass:Constprop.run src in
  Alcotest.(check bool) "rewrote something" true (n > 0);
  let main = find_func m "main" in
  (* After folding, the return must be a constant. *)
  ignore (Cfg.simplify main);
  ignore (Dce.run main);
  let entry = Func.entry_block main in
  match entry.Func.term with
  | Instr.Ret (Some (Instr.Imm 20L)) -> ()
  | _ ->
    (* Ret of a reg whose value is 20 via a Move is acceptable too. *)
    Alcotest.(check int64) "returns 20" 20L
      (Interp.run_func [ m ] "main" []).Interp.ret

let test_constprop_through_join () =
  (* Both arms assign the same constant: it propagates past the join. *)
  let src =
    {|
    func main() {
      var x = 0;
      if (arg(0)) { x = 7; } else { x = 7; }
      return x + 1;
    }
    |}
  in
  let m, _ = check_pass_preserves ~input:[| 1L |] ~pass:Constprop.run src in
  let o = Interp.run ~input:[| 0L |] [ m ] in
  Alcotest.(check int64) "still 8" 8L o.Interp.ret

let test_constprop_divergent_join_not_folded () =
  let src =
    {|
    func main() {
      var x = 0;
      if (arg(0)) { x = 1; } else { x = 2; }
      return x;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  ignore (List.map Constprop.run transformed.Ilmod.funcs);
  List.iter
    (fun input ->
      Helpers.check_same_behaviour ~input "divergent join intact" [ original ]
        [ transformed ])
    [ [| 0L |]; [| 1L |] ]

let test_constprop_folds_branch_condition () =
  let src = "func main() { var a = 5; if (a > 3) { return 1; } return 0; }" in
  let m, _ = check_pass_preserves ~pass:Constprop.run src in
  let main = find_func m "main" in
  ignore (Cfg.simplify main);
  (* The branch folds away entirely. *)
  let branches =
    List.length
      (List.filter
         (fun (b : Func.block) ->
           match b.Func.term with Instr.Br _ -> true | _ -> false)
         main.Func.blocks)
  in
  Alcotest.(check int) "branch folded" 0 branches

let test_constprop_sparse_conditional () =
  (* The infeasible arm must not pollute the join: with [c] known
     true, [x] is 5 after the if, so the result folds completely.
     (A plain all-edges meet would see 5 meet 7 = Bottom.) *)
  let src =
    {|
    func main() {
      var c = 1;
      var x = 0;
      if (c) { x = 5; } else { x = 7; }
      return x + 1;
    }
    |}
  in
  let m, _ = check_pass_preserves ~pass:Constprop.run src in
  let main = find_func m "main" in
  ignore (Cfg.simplify main);
  ignore (Dce.run main);
  ignore (Cfg.simplify main);
  Alcotest.(check int) "collapsed to one block" 1 (List.length main.Func.blocks);
  match (Func.entry_block main).Func.term with
  | Instr.Ret (Some (Instr.Imm 6L)) -> ()
  | _ -> Alcotest.fail "join constant not folded"

let test_constprop_call_result_unknown () =
  let src =
    "func id(x) { return x; } func main() { var a = id(3); return a + 1; }"
  in
  let _, _ = check_pass_preserves ~pass:Constprop.run src in
  ()

(* ---------- Copyprop / Valnum / Dce ---------- *)

let test_copyprop_rewrites () =
  let f = Func.create ~name:"f" ~arity:1 ~linkage:Func.Exported in
  let a = Func.new_reg f in
  let b = Func.new_reg f in
  let blk =
    Func.add_block f
      [
        Instr.Move (a, Instr.Reg 0);
        Instr.Binop (Instr.Add, b, Instr.Reg a, Instr.Reg a);
      ]
      (Instr.Ret (Some (Instr.Reg b)))
  in
  f.Func.entry <- blk.Func.label;
  let n = Copyprop.run f in
  Alcotest.(check bool) "rewrote uses" true (n >= 2);
  match blk.Func.instrs with
  | [ _; Instr.Binop (Instr.Add, _, Instr.Reg 0, Instr.Reg 0) ] -> ()
  | _ -> Alcotest.fail "uses not redirected to r0"

let test_copyprop_stops_at_redefinition () =
  let f = Func.create ~name:"f" ~arity:2 ~linkage:Func.Exported in
  let a = Func.new_reg f in
  let b = Func.new_reg f in
  let blk =
    Func.add_block f
      [
        Instr.Move (a, Instr.Reg 0);
        Instr.Move (a, Instr.Reg 1);  (* redefinition *)
        Instr.Binop (Instr.Add, b, Instr.Reg a, Instr.Imm 0L);
      ]
      (Instr.Ret (Some (Instr.Reg b)))
  in
  f.Func.entry <- blk.Func.label;
  ignore (Copyprop.run f);
  match blk.Func.instrs with
  | [ _; _; Instr.Binop (Instr.Add, _, Instr.Reg r, _) ] ->
    Alcotest.(check int) "propagated the second copy" 1 r
  | _ -> Alcotest.fail "unexpected shape"

let test_valnum_cse () =
  let src =
    {|
    func main() {
      var a = arg(0);
      var x = a * 3 + 1;
      var y = a * 3 + 1;
      return x + y;
    }
    |}
  in
  let m, n = check_pass_preserves ~input:[| 5L |] ~pass:Valnum.run src in
  Alcotest.(check bool) "collapsed duplicates" true (n >= 1);
  let o = Interp.run ~input:[| 5L |] [ m ] in
  Alcotest.(check int64) "value right" 32L o.Interp.ret

let test_valnum_commutative () =
  let src =
    {|
    func main() {
      var a = arg(0);
      var b = arg(1);
      var x = a + b;
      var y = b + a;
      return x * y;
    }
    |}
  in
  let _, n = check_pass_preserves ~input:[| 2L; 3L |] ~pass:Valnum.run src in
  Alcotest.(check bool) "a+b matches b+a" true (n >= 1)

let test_valnum_load_cse_until_store () =
  let src =
    {|
    global g[4];
    func main() {
      g[0] = 5;
      var a = g[0];
      var b = g[0];
      g[0] = 9;
      var c = g[0];
      return a + b + c;
    }
    |}
  in
  let m, n = check_pass_preserves ~pass:Valnum.run src in
  Alcotest.(check bool) "redundant load collapsed" true (n >= 1);
  let o = Interp.run [ m ] in
  Alcotest.(check int64) "19" 19L o.Interp.ret

let test_valnum_call_blocks_load_cse () =
  let src =
    {|
    global g;
    func bump() { g = g + 1; return 0; }
    func main() {
      g = 1;
      var a = g;
      bump();
      var b = g;
      return a * 10 + b;
    }
    |}
  in
  let m, _ = check_pass_preserves ~pass:Valnum.run src in
  let o = Interp.run [ m ] in
  Alcotest.(check int64) "12 (load after call not collapsed)" 12L o.Interp.ret

let test_dce_removes_dead_pure () =
  let f = Func.create ~name:"f" ~arity:1 ~linkage:Func.Exported in
  let dead = Func.new_reg f in
  let live_r = Func.new_reg f in
  let blk =
    Func.add_block f
      [
        Instr.Binop (Instr.Mul, dead, Instr.Reg 0, Instr.Imm 100L);
        Instr.Binop (Instr.Add, live_r, Instr.Reg 0, Instr.Imm 1L);
      ]
      (Instr.Ret (Some (Instr.Reg live_r)))
  in
  f.Func.entry <- blk.Func.label;
  let n = Dce.run f in
  Alcotest.(check int) "one deleted" 1 n;
  Alcotest.(check int) "one left" 1 (List.length blk.Func.instrs)

let test_dce_keeps_stores_and_calls () =
  let src =
    {|
    global g;
    func side() { g = g + 1; return g; }
    func main() { side(); side(); return g; }
    |}
  in
  let m, _ = check_pass_preserves ~pass:Dce.run src in
  let o = Interp.run [ m ] in
  Alcotest.(check int64) "both calls survived" 2L o.Interp.ret

let test_dce_drops_unused_call_result () =
  let src = "func id(x) { return x; } func main() { id(5); return 1; }" in
  let m, _ = check_pass_preserves ~pass:Dce.run src in
  let main = find_func m "main" in
  let dst_none =
    List.exists
      (fun (b : Func.block) ->
        List.exists
          (fun i ->
            match i with
            | Instr.Call { dst = None; callee = "id"; _ } -> true
            | _ -> false)
          b.Func.instrs)
      main.Func.blocks
  in
  Alcotest.(check bool) "call kept, result dropped" true dst_none

let test_dce_respects_cross_block_liveness () =
  let src =
    {|
    func main() {
      var a = arg(0) * 2;
      if (arg(1)) { return a; }
      return 0;
    }
    |}
  in
  List.iter
    (fun input ->
      let original = compile src in
      let transformed = snapshot original in
      ignore (List.map Dce.run transformed.Ilmod.funcs);
      Helpers.check_same_behaviour ~input "live across blocks kept"
        [ original ] [ transformed ])
    [ [| 3L; 1L |]; [| 3L; 0L |] ]

(* ---------- LICM ---------- *)

let test_licm_hoists_invariant () =
  let src =
    {|
    func main() {
      var n = arg(0);
      var s = 0;
      var i = 0;
      while (i < n) {
        var inv = n * 7 + 3;
        s = s + inv;
        i = i + 1;
      }
      return s;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let main_t = find_func transformed "main" in
  let hoisted = Licm.run main_t in
  Alcotest.(check bool) "hoisted something" true (hoisted >= 1);
  List.iter
    (fun input ->
      Helpers.check_same_behaviour ~input "licm preserves" [ original ]
        [ transformed ])
    [ [| 0L |]; [| 1L |]; [| 10L |] ];
  Alcotest.(check int) "verifies" 0
    (List.length (Verify.check_program [ transformed ]))

let test_licm_zero_iteration_safe () =
  (* The loop never runs: hoisted code must not change the result. *)
  let src =
    {|
    func main() {
      var s = 100;
      var i = 5;
      while (i < arg(0)) {
        var inv = 3 * 3;
        s = s + inv;
        i = i + 1;
      }
      return s;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  ignore (List.map Licm.run transformed.Ilmod.funcs);
  Helpers.check_same_behaviour ~input:[| 0L |] "zero-trip loop" [ original ]
    [ transformed ]

let test_licm_does_not_hoist_variant () =
  let src =
    {|
    func main() {
      var s = 0;
      var i = 0;
      while (i < 10) { s = s + i * 2; i = i + 1; }
      return s;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  ignore (List.map Licm.run transformed.Ilmod.funcs);
  Helpers.check_same_behaviour "variant not hoisted" [ original ] [ transformed ]

let test_licm_hoists_load_when_no_clobber () =
  let src =
    {|
    global k = 21;
    func main() {
      var s = 0;
      var i = 0;
      while (i < 4) { s = s + k; i = i + 1; }
      return s;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let n = Licm.run (find_func transformed "main") in
  Alcotest.(check bool) "load hoisted" true (n >= 1);
  Helpers.check_same_behaviour "load hoist preserves" [ original ] [ transformed ]

let test_licm_no_load_hoist_with_store () =
  let src =
    {|
    global k = 1;
    func main() {
      var s = 0;
      var i = 0;
      while (i < 4) { k = k + 1; s = s + k; i = i + 1; }
      return s;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  ignore (Licm.run (find_func transformed "main"));
  Helpers.check_same_behaviour "clobbered load stays" [ original ] [ transformed ]

(* ---------- Unroll ---------- *)

let count_loops f = List.length (Cmo_hlo.Loopinfo.loops (Cmo_hlo.Loopinfo.compute f))

let test_unroll_constant_trip () =
  let src =
    {|
    global out[8];
    func main() {
      var s = 0;
      var i = 0;
      while (i < 6) { s = s + i * 3; out[i] = s; i = i + 1; }
      return s + out[2];
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let main = find_func transformed "main" in
  (* Normalize then unroll, as the phase pipeline does. *)
  ignore (Constprop.run main);
  ignore (Cfg.simplify main);
  let n = Cmo_hlo.Unroll.run main in
  Alcotest.(check int) "one loop unrolled" 1 n;
  Alcotest.(check int) "no loops left" 0 (count_loops main);
  Helpers.check_same_behaviour "unroll preserves" [ original ] [ transformed ];
  Alcotest.(check int) "verifies" 0
    (List.length (Verify.check_program [ transformed ]))

let test_unroll_zero_trip () =
  let src =
    {|
    global g;
    func main() {
      var i = 9;
      while (i < 3) { g = g + 1; i = i + 1; }
      return g + i;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let main = find_func transformed "main" in
  (* Sparse-conditional constant propagation may already prove the
     loop dead; either way no loop survives and behaviour holds. *)
  ignore (Constprop.run main);
  ignore (Cfg.simplify main);
  ignore (Cmo_hlo.Unroll.run main);
  ignore (Cfg.simplify main);
  Alcotest.(check int) "zero-trip loop eliminated" 0 (count_loops main);
  Helpers.check_same_behaviour "zero-trip preserves" [ original ] [ transformed ]

let test_unroll_side_effect_counts () =
  (* Calls in the loop body must execute exactly trip times. *)
  let src =
    {|
    func main() {
      var i = 0;
      while (i < 4) { print(i); i = i + 1; }
      return i;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let main = find_func transformed "main" in
  ignore (Constprop.run main);
  ignore (Cfg.simplify main);
  Alcotest.(check int) "unrolled" 1 (Cmo_hlo.Unroll.run main);
  Helpers.check_same_behaviour "prints preserved in order" [ original ]
    [ transformed ];
  (* Duplicated calls must carry unique site ids. *)
  Alcotest.(check int) "verifies (unique sites)" 0
    (List.length (Verify.check_program [ transformed ]))

let test_unroll_skips_variable_bound () =
  let src =
    {|
    func main() {
      var n = arg(0);
      var s = 0;
      var i = 0;
      while (i < n) { s = s + i; i = i + 1; }
      return s;
    }
    |}
  in
  let m = compile src in
  let main = find_func m "main" in
  ignore (Constprop.run main);
  Alcotest.(check int) "variable bound not unrolled" 0 (Cmo_hlo.Unroll.run main)

let test_unroll_respects_budget () =
  let src =
    {|
    global g;
    func main() {
      var i = 0;
      while (i < 500) { g = g + i; i = i + 1; }
      return g;
    }
    |}
  in
  let m = compile src in
  let main = find_func m "main" in
  ignore (Constprop.run main);
  Alcotest.(check int) "big trip not unrolled" 0 (Cmo_hlo.Unroll.run main)

let test_unroll_then_constprop_folds () =
  (* After unrolling, the induction variable is a chain of constants
     that the next constprop round folds completely. *)
  let src =
    "func main() { var s = 0; var i = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }"
  in
  let m = compile src in
  let main = find_func m "main" in
  let total = Phase.optimize_func main in
  Alcotest.(check bool) "pipeline did work" true (total > 0);
  let o = Interp.run [ m ] in
  Alcotest.(check int64) "sum 0..4" 10L o.Interp.ret;
  (* The whole function should now be straight-line. *)
  Alcotest.(check int) "no loops left" 0 (count_loops main)

let test_valnum_superlocal_across_branch () =
  (* [a * 7] is computed before the branch; both arms recompute it.
     Superlocal numbering collapses the copies inside the arms. *)
  let src =
    {|
    func main() {
      var a = arg(0);
      var x = a * 7;
      var r = 0;
      if (arg(1)) { r = a * 7 + 1; } else { r = a * 7 - 1; }
      return r + x;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let n =
    List.fold_left (fun acc f -> acc + Valnum.run f) 0 transformed.Ilmod.funcs
  in
  Alcotest.(check bool) "collapsed across the branch" true (n >= 2);
  List.iter
    (fun input ->
      Helpers.check_same_behaviour ~input "superlocal preserves" [ original ]
        [ transformed ])
    [ [| 3L; 0L |]; [| 3L; 1L |] ]

let test_valnum_join_point_fresh () =
  (* After the join, values computed in only one arm must NOT be
     reused: behaviour on both paths must stay correct. *)
  let src =
    {|
    func main() {
      var a = arg(0);
      var r = 0;
      if (arg(1)) { r = a * 9; } else { r = a + 1; }
      var y = a * 9;
      return r + y;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  ignore (List.map Valnum.run transformed.Ilmod.funcs);
  List.iter
    (fun input ->
      Helpers.check_same_behaviour ~input "join handled" [ original ]
        [ transformed ])
    [ [| 5L; 0L |]; [| 5L; 1L |] ]

let test_valnum_redundant_branch_elimination () =
  (* The inner re-test of [c] on both arms is redundant: the paper's
     "redundant branch elimination". *)
  let src =
    {|
    func main() {
      var c = arg(0) > 10;
      var r = 0;
      if (c) {
        if (c) { r = 1; } else { r = 2; }
      } else {
        if (c) { r = 3; } else { r = 4; }
      }
      return r;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  let main = find_func transformed "main" in
  let n = Valnum.run main in
  Alcotest.(check bool) "folded inner branches" true (n >= 2);
  ignore (Cfg.simplify main);
  let branches =
    List.length
      (List.filter
         (fun (b : Func.block) ->
           match b.Func.term with Instr.Br _ -> true | _ -> false)
         main.Func.blocks)
  in
  Alcotest.(check int) "one branch remains" 1 branches;
  List.iter
    (fun input ->
      Helpers.check_same_behaviour ~input "branch folding preserves"
        [ original ] [ transformed ])
    [ [| 0L |]; [| 50L |] ]

let test_valnum_branch_facts_killed_by_redefinition () =
  (* Reassigning the condition between the tests blocks the fold. *)
  let src =
    {|
    func main() {
      var c = arg(0) > 10;
      var r = 0;
      if (c) {
        c = arg(1) > 5;
        if (c) { r = 1; } else { r = 2; }
      }
      return r;
    }
    |}
  in
  let original = compile src in
  let transformed = snapshot original in
  ignore (List.map Valnum.run transformed.Ilmod.funcs);
  List.iter
    (fun input ->
      Helpers.check_same_behaviour ~input "redefinition respected"
        [ original ] [ transformed ])
    [ [| 50L; 9L |]; [| 50L; 0L |]; [| 0L; 9L |] ]

(* ---------- memory disambiguation ---------- *)

let test_valnum_disambiguates_globals () =
  let src =
    {|
    global a;
    global b;
    func main() {
      a = 5;
      var x = a;
      b = 9;
      var y = a;
      return x + y + b;
    }
    |}
  in
  let m, n = check_pass_preserves ~pass:Valnum.run src in
  (* The second load of [a] survives the store to [b]. *)
  Alcotest.(check bool) "load of a collapsed across store to b" true (n >= 1);
  let o = Interp.run [ m ] in
  Alcotest.(check int64) "value" 19L o.Interp.ret

let test_valnum_same_global_still_killed () =
  let src =
    {|
    global a[4];
    func main() {
      a[0] = 5;
      var x = a[0];
      a[1] = 9;
      var y = a[0];
      return x + y;
    }
    |}
  in
  (* A store to a different index of the SAME global must still kill
     the load (the index may alias dynamically in general). *)
  let original = compile src in
  let transformed = snapshot original in
  ignore (List.map Valnum.run transformed.Ilmod.funcs);
  Helpers.check_same_behaviour "same-base store kills" [ original ] [ transformed ]

(* ---------- Inline ---------- *)

let two_module_sources =
  [
    ( "app",
      {|
      func main() {
        var s = 0;
        var i = 0;
        while (i < 50) { s = s + helper(i); i = i + 1; }
        return s;
      }
      |} );
    ("lib", "func helper(x) { return x * 2 + 1; }");
  ]

let test_inline_call_at_basic () =
  let modules = Helpers.compile_all two_module_sources in
  let original = List.map snapshot modules in
  let app = List.nth modules 0 in
  let lib = List.nth modules 1 in
  let main = find_func app "main" in
  let helper = find_func lib "helper" in
  let site, _ = List.hd (Func.site_calls main) in
  Alcotest.(check bool) "inlined" true
    (Inline.inline_call_at ~caller:main ~site ~callee:helper);
  (* No call to helper remains in main. *)
  let still_calls =
    List.exists (fun (_, c) -> c.Instr.callee = "helper") (Func.site_calls main)
  in
  Alcotest.(check bool) "call gone" false still_calls;
  Helpers.check_same_behaviour "inline preserves" original modules;
  Alcotest.(check int) "verifies" 0 (List.length (Verify.check_program modules))

let test_inline_call_at_wrong_site () =
  let modules = Helpers.compile_all two_module_sources in
  let main = find_func (List.nth modules 0) "main" in
  let helper = find_func (List.nth modules 1) "helper" in
  Alcotest.(check bool) "bogus site rejected" false
    (Inline.inline_call_at ~caller:main ~site:999 ~callee:helper)

let test_inline_void_call () =
  let sources =
    [
      ("app", "global g; func main() { poke(); poke(); return g; }");
      ("lib", "extern global g; func poke() { g = g + 1; return 0; }");
    ]
  in
  let modules = Helpers.compile_all sources in
  let original = List.map snapshot modules in
  let app = List.nth modules 0 in
  let lib = List.nth modules 1 in
  let main = find_func app "main" in
  let poke = find_func lib "poke" in
  List.iter
    (fun (site, (c : Instr.call)) ->
      if c.Instr.callee = "poke" then
        ignore (Inline.inline_call_at ~caller:main ~site ~callee:poke))
    (Func.site_calls main);
  Helpers.check_same_behaviour "void inline preserves" original modules

let test_inline_recursive_callee_body () =
  (* Inlining one level of a recursive function via the low-level
     entry point must keep behaviour (the spliced body calls the
     original). *)
  let src =
    {|
    func fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    func main() { return fib(12); }
    |}
  in
  let m = compile src in
  let original = snapshot m in
  let main = find_func m "main" in
  let fib = find_func m "fib" in
  let site, _ = List.hd (Func.site_calls main) in
  Alcotest.(check bool) "spliced" true
    (Inline.inline_call_at ~caller:main ~site ~callee:fib);
  Helpers.check_same_behaviour "one-level unroll preserves" [ original ] [ m ]

let test_inline_run_cross_module () =
  let modules = Helpers.compile_all two_module_sources in
  let original = List.map snapshot modules in
  let cg = Callgraph.build modules in
  let loader = loader_of_modules modules in
  let stats =
    Inline.run loader cg
      { Inline.default_config with Inline.use_profile = false }
  in
  Alcotest.(check bool) "inlined the helper" true (stats.Inline.operations >= 1);
  Alcotest.(check bool) "cross-module counted" true (stats.Inline.cross_module >= 1);
  let result = Loader.extract_modules loader in
  Helpers.check_same_behaviour "driver inline preserves" original result;
  Loader.close loader

let test_inline_respects_operation_limit () =
  let modules = Helpers.compile_all two_module_sources in
  let cg = Callgraph.build modules in
  let loader = loader_of_modules modules in
  let stats =
    Inline.run loader cg
      { Inline.default_config with Inline.use_profile = false; operation_limit = Some 0 }
  in
  Alcotest.(check int) "no operations" 0 stats.Inline.operations;
  Loader.close loader

let test_inline_profile_scaling () =
  let modules = Helpers.compile_all two_module_sources in
  let db = Db.create () in
  let _ = Train.run modules db in
  ignore (Correlate.annotate db modules);
  let app = List.nth modules 0 in
  let lib = List.nth modules 1 in
  let main = find_func app "main" in
  let helper = find_func lib "helper" in
  let site, _ = List.hd (Func.site_calls main) in
  ignore (Inline.inline_call_at ~caller:main ~site ~callee:helper);
  (* The inlined body was executed 50 times: some spliced block must
     carry (approximately) that frequency. *)
  let has_hot_block =
    List.exists (fun (b : Func.block) -> b.Func.freq = 50.0) main.Func.blocks
  in
  Alcotest.(check bool) "frequencies scaled into caller" true has_hot_block

let test_inline_skips_recursive_in_driver () =
  let src =
    "func f(n) { if (n < 1) { return 0; } return f(n - 1) + 1; } func main() { return f(9); }"
  in
  let m = compile src in
  let cg = Callgraph.build [ m ] in
  let loader = loader_of_modules [ m ] in
  let stats =
    Inline.run loader cg { Inline.aggressive_no_profile with Inline.operation_limit = None }
  in
  Alcotest.(check int) "no recursive inlines" 0 stats.Inline.operations;
  Loader.close loader

let test_inline_rejection_diagnostics () =
  (* One hot site with an oversized callee, one cold site, one
     recursive callee: each must land in its rejection bucket. *)
  let big_body =
    String.concat "\n"
      (List.init 80 (fun i ->
           Printf.sprintf "  s = (s + x * %d) & 65535;" (i + 3)))
  in
  let src =
    Printf.sprintf
      {|
      func big(x) {
        var s = 0;
      %s
        return s;
      }
      func self(n) { if (n < 1) { return 0; } return self(n - 1); }
      func coldfn(x) {
        var s = x;
        var i = 0;
        while (i < 20) {
          s = (s * 3 + i) & 1023;
          s = (s ^ (i << 2)) + (s >> 1);
          s = (s * 5 - i * 7) & 4095;
          s = s + ((i * i) & 31);
          i = i + 1;
        }
        return s;
      }
      func main() {
        var s = 0;
        var i = 0;
        while (i < 3000) { s = (s + big(i)) & 65535; i = i + 1; }
        s = s + self(5);
        if (s < 0) { s = coldfn(s); }
        return s;
      }
      |}
      big_body
  in
  let m = compile src in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  ignore (Correlate.annotate db [ m ]);
  let cg = Callgraph.build [ m ] in
  let loader = loader_of_modules [ m ] in
  let stats =
    Inline.run loader cg
      { Inline.default_config with Inline.hot_size_limit = 60 }
  in
  Alcotest.(check bool) "big rejected as too big" true
    (stats.Inline.rejected_too_big >= 1);
  Alcotest.(check bool) "recursive rejected" true
    (stats.Inline.rejected_recursive >= 1);
  Alcotest.(check bool) "cold site rejected" true
    (stats.Inline.rejected_cold >= 1);
  Loader.close loader

(* ---------- Ipa ---------- *)

let test_ipa_const_params () =
  let src =
    {|
    static func scaled(x, k) { return x * k; }
    func main() {
      var s = 0;
      var i = 0;
      while (i < 5) { s = s + scaled(i, 10); i = i + 1; }
      return s;
    }
    |}
  in
  let m = compile src in
  let original = snapshot m in
  let loader = loader_of_modules [ m ] in
  let stats = Ipa.run loader Ipa.whole_program in
  Alcotest.(check int) "k pinned" 1 stats.Ipa.const_params;
  let result = Loader.extract_modules loader in
  Helpers.check_same_behaviour "ipa preserves" [ original ] result;
  Loader.close loader

let test_ipa_varying_param_not_pinned () =
  let src =
    {|
    static func scaled(x, k) { return x * k; }
    func main() { return scaled(1, 10) + scaled(2, 20); }
    |}
  in
  let m = compile src in
  let loader = loader_of_modules [ m ] in
  let stats = Ipa.run loader Ipa.whole_program in
  Alcotest.(check int) "nothing pinned" 0 stats.Ipa.const_params;
  Loader.close loader

let test_ipa_externally_called_not_pinned () =
  let src = "func api(x) { return x + 1; } func main() { return api(3); }" in
  let m = compile src in
  let loader = loader_of_modules [ m ] in
  let ctx =
    { Ipa.whole_program with Ipa.externally_called = (fun n -> n = "api") }
  in
  let stats = Ipa.run loader ctx in
  Alcotest.(check int) "api params untouched" 0 stats.Ipa.const_params;
  Loader.close loader

let test_ipa_const_global_folded () =
  let src =
    {|
    global table[4] = {10, 20, 30, 40};
    func main() { return table[1] + table[2]; }
    |}
  in
  let m = compile src in
  let original = snapshot m in
  let loader = loader_of_modules [ m ] in
  let stats = Ipa.run loader Ipa.whole_program in
  Alcotest.(check int) "two loads folded" 2 stats.Ipa.const_global_loads;
  let result = Loader.extract_modules loader in
  Helpers.check_same_behaviour "const global preserves" [ original ] result;
  Loader.close loader

let test_ipa_stored_global_not_folded () =
  let src =
    {|
    global t[2] = {1, 2};
    func main() { t[0] = 9; return t[0]; }
    |}
  in
  let m = compile src in
  let loader = loader_of_modules [ m ] in
  let stats = Ipa.run loader Ipa.whole_program in
  Alcotest.(check int) "no folds" 0 stats.Ipa.const_global_loads;
  Loader.close loader

let test_ipa_externally_stored_not_folded () =
  let src = "global cfg = 5; func main() { return cfg; }" in
  let m = compile src in
  let loader = loader_of_modules [ m ] in
  let ctx =
    { Ipa.whole_program with Ipa.externally_stored = (fun n -> n = "cfg") }
  in
  let stats = Ipa.run loader ctx in
  Alcotest.(check int) "no folds for extern-stored" 0 stats.Ipa.const_global_loads;
  Loader.close loader

let test_ipa_dead_function_removed () =
  (* Static (module-private) functions with no remaining callers are
     dead; exported functions survive under the shipped-application
     context (their entry points stay callable). *)
  let src =
    {|
    static func unused() { return 1; }
    func unused_exported() { return 3; }
    func used() { return 2; }
    func main() { return used(); }
    |}
  in
  let m = compile ~name:"mm" src in
  let loader = loader_of_modules [ m ] in
  let stats = Ipa.run loader Ipa.whole_program in
  Alcotest.(check (list string)) "static unused removed" [ "mm::unused" ]
    stats.Ipa.dead_functions;
  Alcotest.(check (list string)) "survivors"
    [ "unused_exported"; "used"; "main" ]
    (Loader.func_names loader);
  Loader.close loader

let test_ipa_closed_world_removes_exported () =
  let src =
    {|
    func unused() { return 1; }
    func used() { return 2; }
    func main() { return used(); }
    |}
  in
  let m = compile src in
  let loader = loader_of_modules [ m ] in
  let stats = Ipa.run loader Ipa.closed_world in
  Alcotest.(check (list string)) "unused removed" [ "unused" ]
    stats.Ipa.dead_functions;
  Loader.close loader

let test_ipa_externally_called_kept () =
  let src = "func plugin_hook() { return 1; } func main() { return 0; }" in
  let m = compile src in
  let loader = loader_of_modules [ m ] in
  let ctx =
    { Ipa.whole_program with Ipa.externally_called = (fun n -> n = "plugin_hook") }
  in
  let stats = Ipa.run loader ctx in
  Alcotest.(check (list string)) "nothing removed" [] stats.Ipa.dead_functions;
  Loader.close loader

(* ---------- Clone ---------- *)

let test_clone_specializes_hot_const_site () =
  let src =
    {|
    func kernel(x, mode) {
      var r = 0;
      var i = 0;
      while (i < 10) {
        if (mode == 1) { r = r + x * i; } else { r = r - x * i; }
        i = i + 1;
      }
      return r;
    }
    func main() {
      var s = 0;
      var j = 0;
      while (j < 100) { s = s + kernel(j, 1); j = j + 1; }
      return s;
    }
    |}
  in
  let m = compile src in
  let original = snapshot m in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  ignore (Correlate.annotate db [ m ]);
  let cg = Callgraph.build [ m ] in
  let loader = loader_of_modules [ m ] in
  let clones =
    Clone.run loader cg
      { Clone.default_config with Clone.hot_count = 50.0; min_callee_size = 5 }
  in
  Alcotest.(check int) "one clone" 1 clones;
  let result = Loader.extract_modules loader in
  Helpers.check_same_behaviour "clone preserves" [ original ] result;
  Alcotest.(check bool) "clone function exists" true
    (List.exists
       (fun f -> f.Func.name = "kernel$c0")
       (List.concat_map (fun m -> m.Ilmod.funcs) result));
  Loader.close loader

let test_clone_shared_between_identical_sites () =
  let src =
    {|
    func op(x, k) {
      var r = 0; var i = 0;
      while (i < 5) { r = r + x * k; i = i + 1; }
      return r;
    }
    func main() {
      var s = 0; var j = 0;
      while (j < 100) { s = s + op(j, 3) + op(j + 1, 3); j = j + 1; }
      return s;
    }
    |}
  in
  let m = compile src in
  let db = Db.create () in
  let _ = Train.run [ m ] db in
  ignore (Correlate.annotate db [ m ]);
  let cg = Callgraph.build [ m ] in
  let loader = loader_of_modules [ m ] in
  let clones =
    Clone.run loader cg
      { Clone.default_config with Clone.hot_count = 50.0; min_callee_size = 3 }
  in
  Alcotest.(check int) "one shared clone" 1 clones;
  Loader.close loader

let test_clone_cold_site_ignored () =
  let src =
    {|
    func op(x, k) {
      var r = 0; var i = 0;
      while (i < 5) { r = r + x * k; i = i + 1; }
      return r;
    }
    func main() { return op(2, 3); }
    |}
  in
  let m = compile src in
  (* No profile: counts are zero. *)
  let cg = Callgraph.build [ m ] in
  let loader = loader_of_modules [ m ] in
  let clones = Clone.run loader cg Clone.default_config in
  Alcotest.(check int) "no clones" 0 clones;
  Loader.close loader

(* ---------- Selectivity ---------- *)

let selectivity_program () =
  let sources =
    [
      ( "hotmod",
        {|
        func hot(x) { return x * 3; }
        func main() {
          var s = 0;
          var i = 0;
          while (i < 1000) { s = s + hot(i); i = i + 1; }
          if (s < 0) { s = coldfn(s); }
          return s;
        }
        |} );
      ( "coldmod",
        {|
        func coldfn(x) {
          var r = 0;
          var i = 0;
          while (i < x) {
            if (i % 3 == 0) { r = r + i * 7; } else { r = r - i; }
            if (i % 5 == 1) { r = r ^ (i << 2); }
            r = r + (i * i) % 13 + (r >> 3);
            i = i + 1;
          }
          return r - 1;
        }
        |} );
    ]
  in
  let modules = Helpers.compile_all sources in
  let db = Db.create () in
  let _ = Train.run modules db in
  ignore (Correlate.annotate db modules);
  modules

let test_selectivity_picks_hot_sites () =
  let modules = selectivity_program () in
  let sel = Selectivity.select ~percent:50.0 modules in
  Alcotest.(check bool) "hot function selected" true
    (Selectivity.is_hot_function sel "hot");
  Alcotest.(check bool) "main selected (caller)" true
    (Selectivity.is_hot_function sel "main");
  Alcotest.(check (list string)) "only hot module in CMO set" [ "hotmod" ]
    sel.Selectivity.cmo_modules

let test_selectivity_zero_percent () =
  let modules = selectivity_program () in
  let sel = Selectivity.select ~percent:0.0 modules in
  Alcotest.(check int) "no sites" 0 (List.length sel.Selectivity.selected_sites);
  Alcotest.(check (list string)) "no modules" [] sel.Selectivity.cmo_modules

let test_selectivity_hundred_percent_excludes_cold () =
  let modules = selectivity_program () in
  let sel = Selectivity.select ~percent:100.0 modules in
  (* coldfn's site never ran: zero-count sites are never selected. *)
  Alcotest.(check bool) "cold site not selected" true
    (List.length sel.Selectivity.selected_sites < sel.Selectivity.sites_total);
  Alcotest.(check bool) "coldfn not hot" false
    (Selectivity.is_hot_function sel "coldfn")

let test_selectivity_deterministic () =
  let modules = selectivity_program () in
  let a = Selectivity.select ~percent:30.0 modules in
  let b = Selectivity.select ~percent:30.0 modules in
  Alcotest.(check bool) "same selection" true
    (a.Selectivity.selected_sites = b.Selectivity.selected_sites)

(* ---------- Phase / Hlo driver ---------- *)

let test_phase_fixpoint_and_budget () =
  let src =
    {|
    func main() {
      var a = 2;
      var b = a * 3;
      var c = b + b;
      var dead = c * 100;
      if (c > 0) { return c; }
      return dead;
    }
    |}
  in
  let m = compile src in
  let original = snapshot m in
  let n = Phase.optimize_func (find_func m "main") in
  Alcotest.(check bool) "did work" true (n > 0);
  Helpers.check_same_behaviour "phase pipeline preserves" [ original ] [ m ];
  (* A second run is a fixpoint. *)
  Alcotest.(check int) "fixpoint" 0 (Phase.optimize_func (find_func m "main"))

let test_phase_budget_limits () =
  let src = "func main() { var a = 2; var b = a * 3; return b + b; }" in
  let m = compile src in
  let budget = Phase.limited 0 in
  let n = Phase.optimize_func ~budget (find_func m "main") in
  Alcotest.(check int) "no work under zero budget" 0 n

let test_phase_charges_derived_memory () =
  let src = "func main() { var i = 0; while (i < 5) { i = i + 1; } return i; }" in
  let m = compile src in
  let mem = Memstats.create () in
  ignore (Phase.optimize_func ~mem (find_func m "main"));
  Alcotest.(check int) "derived released at end" 0
    (Memstats.resident_of mem Memstats.Derived);
  Alcotest.(check bool) "derived was charged" true (Memstats.peak mem > 0)

let test_hlo_o4_end_to_end () =
  let modules = Helpers.compile_all two_module_sources in
  let original = List.map snapshot modules in
  let db = Db.create () in
  let _ = Train.run modules db in
  ignore (Correlate.annotate db modules);
  let cg = Callgraph.build modules in
  let loader = loader_of_modules modules in
  let report = Hlo.run loader cg (Hlo.o4_options ~profile:true) in
  Alcotest.(check bool) "optimized functions" true (report.Hlo.funcs_optimized > 0);
  let result = Loader.extract_modules loader in
  Helpers.check_same_behaviour "o4 preserves behaviour" original result;
  Alcotest.(check int) "verifies" 0 (List.length (Verify.check_program result));
  Loader.close loader

let test_hlo_o4_faster_than_o2 () =
  (* CMO+PBO must reduce interpreter step counts on a call-heavy
     program (the Figure 1 effect, in miniature). *)
  let modules () = Helpers.compile_all two_module_sources in
  let baseline = Interp.run (modules ()) in
  let opt_modules = modules () in
  let db = Db.create () in
  let _ = Train.run opt_modules db in
  ignore (Correlate.annotate db opt_modules);
  let cg = Callgraph.build opt_modules in
  let loader = loader_of_modules opt_modules in
  ignore (Hlo.run loader cg (Hlo.o4_options ~profile:true));
  let result = Loader.extract_modules loader in
  let optimized = Interp.run result in
  Alcotest.(check int64) "same answer" baseline.Interp.ret optimized.Interp.ret;
  Alcotest.(check bool)
    (Printf.sprintf "fewer steps: %d < %d" optimized.Interp.steps baseline.Interp.steps)
    true
    (optimized.Interp.steps < baseline.Interp.steps);
  Loader.close loader

let test_hlo_fine_selectivity_skips_cold () =
  let modules = selectivity_program () in
  let sel = Selectivity.select ~percent:50.0 modules in
  let cg = Callgraph.build modules in
  let loader = loader_of_modules modules in
  let options =
    { (Hlo.o4_options ~profile:true) with
      Hlo.hot_filter = Some (Selectivity.is_hot_function sel) }
  in
  let report = Hlo.run loader cg options in
  Alcotest.(check bool) "skipped cold functions" true (report.Hlo.funcs_skipped > 0);
  Loader.close loader

let suite =
  [
    ("cfg fold constant branch", `Quick, test_cfg_fold_constant_branch);
    ("cfg merge straight-line", `Quick, test_cfg_merge_straightline);
    ("cfg thread jumps", `Quick, test_cfg_thread_jumps);
    ("cfg simplify survives self-loop", `Quick, test_cfg_simplify_loop_safe);
    ("dominators diamond", `Quick, test_dominators_diamond);
    ("loopinfo while", `Quick, test_loopinfo_while);
    ("loopinfo nested", `Quick, test_loopinfo_nested);
    ("loopinfo none", `Quick, test_loopinfo_no_loops);
    ("liveness through branch", `Quick, test_liveness_param_live_through_branch);
    ("liveness dead def", `Quick, test_liveness_dead_def);
    ("constprop folds chain", `Quick, test_constprop_folds_chain);
    ("constprop through join", `Quick, test_constprop_through_join);
    ("constprop divergent join", `Quick, test_constprop_divergent_join_not_folded);
    ("constprop folds branch", `Quick, test_constprop_folds_branch_condition);
    ("constprop sparse conditional", `Quick, test_constprop_sparse_conditional);
    ("constprop call unknown", `Quick, test_constprop_call_result_unknown);
    ("copyprop rewrites", `Quick, test_copyprop_rewrites);
    ("copyprop redefinition", `Quick, test_copyprop_stops_at_redefinition);
    ("valnum cse", `Quick, test_valnum_cse);
    ("valnum commutative", `Quick, test_valnum_commutative);
    ("valnum load cse until store", `Quick, test_valnum_load_cse_until_store);
    ("valnum call blocks load cse", `Quick, test_valnum_call_blocks_load_cse);
    ("dce removes dead pure", `Quick, test_dce_removes_dead_pure);
    ("dce keeps effects", `Quick, test_dce_keeps_stores_and_calls);
    ("dce drops unused call result", `Quick, test_dce_drops_unused_call_result);
    ("dce cross-block liveness", `Quick, test_dce_respects_cross_block_liveness);
    ("licm hoists invariant", `Quick, test_licm_hoists_invariant);
    ("licm zero-iteration safe", `Quick, test_licm_zero_iteration_safe);
    ("licm leaves variant", `Quick, test_licm_does_not_hoist_variant);
    ("licm hoists clean loads", `Quick, test_licm_hoists_load_when_no_clobber);
    ("licm respects clobbers", `Quick, test_licm_no_load_hoist_with_store);
    ("unroll constant trip", `Quick, test_unroll_constant_trip);
    ("unroll zero trip", `Quick, test_unroll_zero_trip);
    ("unroll side effects", `Quick, test_unroll_side_effect_counts);
    ("unroll variable bound", `Quick, test_unroll_skips_variable_bound);
    ("unroll budget", `Quick, test_unroll_respects_budget);
    ("unroll + constprop folds", `Quick, test_unroll_then_constprop_folds);
    ("valnum superlocal", `Quick, test_valnum_superlocal_across_branch);
    ("valnum redundant branch elim", `Quick, test_valnum_redundant_branch_elimination);
    ("valnum branch fact killed", `Quick, test_valnum_branch_facts_killed_by_redefinition);
    ("valnum join fresh", `Quick, test_valnum_join_point_fresh);
    ("valnum disambiguates globals", `Quick, test_valnum_disambiguates_globals);
    ("valnum same-global kill", `Quick, test_valnum_same_global_still_killed);
    ("inline basic", `Quick, test_inline_call_at_basic);
    ("inline wrong site", `Quick, test_inline_call_at_wrong_site);
    ("inline void call", `Quick, test_inline_void_call);
    ("inline one level of recursion", `Quick, test_inline_recursive_callee_body);
    ("inline driver cross-module", `Quick, test_inline_run_cross_module);
    ("inline operation limit", `Quick, test_inline_respects_operation_limit);
    ("inline profile scaling", `Quick, test_inline_profile_scaling);
    ("inline skips recursion", `Quick, test_inline_skips_recursive_in_driver);
    ("inline rejection diagnostics", `Quick, test_inline_rejection_diagnostics);
    ("ipa const params", `Quick, test_ipa_const_params);
    ("ipa varying params", `Quick, test_ipa_varying_param_not_pinned);
    ("ipa external callers", `Quick, test_ipa_externally_called_not_pinned);
    ("ipa const globals", `Quick, test_ipa_const_global_folded);
    ("ipa stored globals", `Quick, test_ipa_stored_global_not_folded);
    ("ipa externally stored globals", `Quick, test_ipa_externally_stored_not_folded);
    ("ipa dead functions", `Quick, test_ipa_dead_function_removed);
    ("ipa closed world", `Quick, test_ipa_closed_world_removes_exported);
    ("ipa external functions kept", `Quick, test_ipa_externally_called_kept);
    ("clone hot const site", `Quick, test_clone_specializes_hot_const_site);
    ("clone shared", `Quick, test_clone_shared_between_identical_sites);
    ("clone cold ignored", `Quick, test_clone_cold_site_ignored);
    ("selectivity picks hot", `Quick, test_selectivity_picks_hot_sites);
    ("selectivity zero percent", `Quick, test_selectivity_zero_percent);
    ("selectivity excludes cold", `Quick, test_selectivity_hundred_percent_excludes_cold);
    ("selectivity deterministic", `Quick, test_selectivity_deterministic);
    ("phase fixpoint", `Quick, test_phase_fixpoint_and_budget);
    ("phase zero budget", `Quick, test_phase_budget_limits);
    ("phase derived memory", `Quick, test_phase_charges_derived_memory);
    ("hlo o4 end to end", `Quick, test_hlo_o4_end_to_end);
    ("hlo o4 beats o2", `Quick, test_hlo_o4_faster_than_o2);
    ("hlo fine selectivity", `Quick, test_hlo_fine_selectivity_skips_cold);
  ]
