test/test_fuzz.ml: Cmo_driver Cmo_frontend Cmo_hlo Cmo_il Cmo_link Cmo_llo Cmo_naim Cmo_profile Cmo_support Cmo_vm Cmo_workload Gen Hashtbl Int64 List Printf QCheck QCheck_alcotest String
