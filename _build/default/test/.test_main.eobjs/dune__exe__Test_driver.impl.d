test/test_driver.ml: Alcotest Array Cmo_driver Cmo_hlo Cmo_il Cmo_link Cmo_profile Cmo_vm Filename Fun List Printf String Sys
