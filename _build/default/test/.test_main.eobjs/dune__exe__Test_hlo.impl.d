test/test_hlo.ml: Alcotest Cmo_hlo Cmo_il Cmo_naim Cmo_profile Helpers List Option Printf String
