test/test_llo.ml: Alcotest Array Cmo_il Cmo_link Cmo_llo Cmo_profile Cmo_vm Format Helpers Int64 List Option Printf String
