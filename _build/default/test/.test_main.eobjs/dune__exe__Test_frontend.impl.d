test/test_frontend.ml: Alcotest Cmo_frontend Cmo_hlo Cmo_il Helpers List Option
