test/test_support.ml: Alcotest Array Cmo_support Fun Int64 List QCheck QCheck_alcotest String
