test/test_main.ml: Alcotest Test_driver Test_frontend Test_fuzz Test_hlo Test_il Test_link Test_llo Test_misc Test_naim Test_profile Test_support Test_workload
