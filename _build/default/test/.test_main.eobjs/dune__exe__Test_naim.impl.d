test/test_naim.ml: Alcotest Cmo_il Cmo_naim Filename Fun Helpers Int64 List Printf String Sys
