test/test_misc.ml: Alcotest Cmo_driver Cmo_il Cmo_link Cmo_llo Cmo_naim Cmo_profile Cmo_vm Format Helpers List String
