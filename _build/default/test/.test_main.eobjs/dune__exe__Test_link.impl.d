test/test_link.ml: Alcotest Array Cmo_il Cmo_link Cmo_llo Cmo_support Cmo_vm Filename Format Fun Helpers List Sys
