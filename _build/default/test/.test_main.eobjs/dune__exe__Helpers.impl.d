test/helpers.ml: Alcotest Cmo_frontend Cmo_il Format Int64 List
