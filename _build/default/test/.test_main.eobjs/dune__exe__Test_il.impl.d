test/test_il.ml: Alcotest Cmo_il Cmo_support Hashtbl Helpers List Printf String
