test/test_workload.ml: Alcotest Cmo_driver Cmo_il Cmo_profile Cmo_vm Cmo_workload List Printf String
