test/test_profile.ml: Alcotest Cmo_il Cmo_profile Filename Fun Helpers List Option Sys
