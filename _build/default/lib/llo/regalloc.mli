(** Linear-scan register allocation.

    Assigns the virtual registers of a {!Isel.vcode} to the twenty
    allocatable physical registers, spilling to frame slots when
    pressure exceeds supply.  The spill victim is the interval with
    the lowest profile-weighted use count (block frequencies from
    correlation weight each access; the paper's PBO improvement to
    the register-allocation cost model), ties broken toward the
    furthest endpoint — the classic linear-scan choice, which is also
    what an unprofiled compilation degenerates to when weights are
    uniform.  Spilled operands are rewritten through the scratch
    registers; the stack-pointer-relative slot offsets assume the
    {!Codegen} frame layout (outgoing args, then spill slots, then
    the callee-saved save area).

    Intervals are computed from machine-level liveness over the block
    layout order, conservatively covering lifetime holes — the classic
    Poletto–Sarkar formulation, which is what a 1990s production
    low-level optimizer's allocator approximates at this altitude. *)

type result = {
  vcode : Isel.vcode;  (** Same value, rewritten in place: physical registers only. *)
  spill_slots : int;
  used_callee_saved : Mach.reg list;
      (** Allocatable registers actually assigned, ascending — the
          prologue must save exactly these. *)
  spilled_vregs : int;  (** How many virtual registers went to memory. *)
}

val run : Isel.vcode -> result
