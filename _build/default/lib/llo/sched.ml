let is_barrier = function
  | Mach.Call_sym _ | Mach.Call_abs _ | Mach.Sys _ | Mach.Cnt _ | Mach.Adjsp _
  | Mach.B _ | Mach.Bz _ | Mach.Bnz _ | Mach.Ret | Mach.Halt -> true
  | Mach.Li _ | Mach.Mv _ | Mach.Op _ | Mach.Opi _ | Mach.Un _ | Mach.Ld _
  | Mach.St _ | Mach.Lga _ -> false

let is_load = function Mach.Ld _ -> true | _ -> false

let is_store = function Mach.St _ -> true | _ -> false

(* Schedule one barrier-free segment; returns instructions in the new
   order plus how many changed relative position. *)
let schedule_segment instrs =
  let n = Array.length instrs in
  if n <= 2 then (Array.to_list instrs, 0)
  else begin
    (* Dependence edges i -> j (i before j). *)
    let succs = Array.make n [] in
    let preds_count = Array.make n 0 in
    let edge i j =
      if not (List.mem j succs.(i)) then begin
        succs.(i) <- j :: succs.(i);
        preds_count.(j) <- preds_count.(j) + 1
      end
    in
    for j = 0 to n - 1 do
      let uses_j = Mach.uses instrs.(j) and defs_j = Mach.defs instrs.(j) in
      for i = 0 to j - 1 do
        let defs_i = Mach.defs instrs.(i) and uses_i = Mach.uses instrs.(i) in
        let raw = List.exists (fun d -> List.mem d uses_j) defs_i in
        let war = List.exists (fun d -> List.mem d uses_i) defs_j in
        let waw = List.exists (fun d -> List.mem d defs_j) defs_i in
        let mem_order =
          (is_store instrs.(i) && (is_store instrs.(j) || is_load instrs.(j)))
          || (is_load instrs.(i) && is_store instrs.(j))
        in
        if raw || war || waw || mem_order then edge i j
      done
    done;
    (* Critical-path height: loads weigh extra (their consumers wait). *)
    let height = Array.make n 1 in
    for i = n - 1 downto 0 do
      let weight = if is_load instrs.(i) then 2 else 1 in
      let best =
        List.fold_left (fun acc j -> max acc height.(j)) 0 succs.(i)
      in
      height.(i) <- weight + best
    done;
    (* Greedy list scheduling. *)
    let scheduled = ref [] in
    let emitted = Array.make n false in
    let remaining = ref n in
    let last_load_dst = ref (-1) in
    let moved = ref 0 in
    let next_orig = ref 0 in
    while !remaining > 0 do
      (* Ready = all predecessors emitted. *)
      let ready = ref [] in
      for i = n - 1 downto 0 do
        if (not emitted.(i)) && preds_count.(i) = 0 then ready := i :: !ready
      done;
      let stalls i =
        !last_load_dst >= 0 && List.mem !last_load_dst (Mach.uses instrs.(i))
      in
      let better a b =
        (* Prefer non-stalling, then higher critical path, then
           original order. *)
        match (stalls a, stalls b) with
        | false, true -> true
        | true, false -> false
        | _ ->
          if height.(a) <> height.(b) then height.(a) > height.(b) else a < b
      in
      let pick =
        match !ready with
        | [] -> assert false
        | first :: rest ->
          List.fold_left (fun best i -> if better i best then i else best) first rest
      in
      emitted.(pick) <- true;
      List.iter (fun j -> preds_count.(j) <- preds_count.(j) - 1) succs.(pick);
      scheduled := instrs.(pick) :: !scheduled;
      last_load_dst :=
        (match instrs.(pick) with Mach.Ld (d, _, _) -> d | _ -> -1);
      if pick <> !next_orig then incr moved;
      (* Track the next original index among unemitted for the moved
         metric. *)
      while !next_orig < n && emitted.(!next_orig) do
        incr next_orig
      done;
      decr remaining
    done;
    (List.rev !scheduled, !moved)
  end

let run (vc : Isel.vcode) =
  let moved = ref 0 in
  List.iter
    (fun (b : Isel.vblock) ->
      (* Split at barriers; schedule each pure segment. *)
      let out = ref [] in
      let segment = ref [] in
      let flush () =
        let instrs = Array.of_list (List.rev !segment) in
        let ordered, m = schedule_segment instrs in
        moved := !moved + m;
        out := List.rev_append ordered !out;
        segment := []
      in
      List.iter
        (fun i ->
          if is_barrier i then begin
            flush ();
            out := i :: !out
          end
          else segment := i :: !segment)
        b.Isel.body;
      flush ();
      b.Isel.body <- List.rev !out)
    vc.Isel.vblocks;
  !moved
