module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

let cold_fraction (f : Func.t) =
  let n = List.length f.Func.blocks in
  if n = 0 then 0.0
  else begin
    let cold =
      List.length
        (List.filter (fun (b : Func.block) -> b.Func.freq = 0.0) f.Func.blocks)
    in
    float_of_int cold /. float_of_int n
  end

(* Chains are lists of labels; we keep, per chain id, the label list
   plus head/tail for O(1) merging decisions. *)
type chain = { mutable labels : Instr.label list (* in order *) }

let run (f : Func.t) =
  let blocks = f.Func.blocks in
  let has_profile =
    List.exists (fun (b : Func.block) -> b.Func.freq > 0.0) blocks
  in
  if (not has_profile) || List.length blocks < 3 then false
  else begin
    let freq_of = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) -> Hashtbl.replace freq_of b.Func.label b.Func.freq)
      blocks;
    let freq l = Option.value ~default:0.0 (Hashtbl.find_opt freq_of l) in
    (* Weighted CFG edges, deterministic order. *)
    let edges = ref [] in
    List.iteri
      (fun bias_base (b : Func.block) ->
        List.iteri
          (fun i succ ->
            (* Never chain onto the entry block: it must stay first in
               the layout (execution starts at the function's base). *)
            if succ <> b.Func.label && succ <> f.Func.entry then begin
              let w = Float.min b.Func.freq (freq succ) in
              (* Prefer the fall-through arm of a conditional (the
                 second target, [ifnot]) on ties; bias keeps sorting
                 deterministic without affecting magnitudes. *)
              let bias = float_of_int (i + bias_base mod 7) *. 1e-9 in
              edges := (w -. bias, b.Func.label, succ) :: !edges
            end)
          (Instr.targets b.Func.term))
      blocks;
    let sorted_edges =
      List.sort
        (fun (w1, s1, d1) (w2, s2, d2) ->
          match compare w2 w1 with
          | 0 -> compare (s1, d1) (s2, d2)
          | c -> c)
        !edges
    in
    (* Bottom-up chaining. *)
    let chain_of = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) ->
        Hashtbl.replace chain_of b.Func.label { labels = [ b.Func.label ] })
      blocks;
    List.iter
      (fun (_, src, dst) ->
        let cs = Hashtbl.find chain_of src in
        let cd = Hashtbl.find chain_of dst in
        if cs != cd then begin
          let src_is_tail =
            match List.rev cs.labels with
            | last :: _ -> last = src
            | [] -> false
          in
          let dst_is_head =
            match cd.labels with first :: _ -> first = dst | [] -> false
          in
          if src_is_tail && dst_is_head then begin
            cs.labels <- cs.labels @ cd.labels;
            List.iter (fun l -> Hashtbl.replace chain_of l cs) cd.labels
          end
        end)
      sorted_edges;
    (* Order chains: the entry's chain first, then by descending peak
       frequency, zero-frequency chains last; ties by first label. *)
    let seen = Hashtbl.create 16 in
    let chains =
      List.filter_map
        (fun (b : Func.block) ->
          let c = Hashtbl.find chain_of b.Func.label in
          match c.labels with
          | first :: _ when first = b.Func.label && not (Hashtbl.mem seen first)
            ->
            Hashtbl.replace seen first ();
            Some c
          | _ -> None)
        blocks
    in
    let peak c = List.fold_left (fun acc l -> Float.max acc (freq l)) 0.0 c.labels in
    let entry_chain = Hashtbl.find chain_of f.Func.entry in
    let rest = List.filter (fun c -> c != entry_chain) chains in
    let rest_sorted =
      List.stable_sort (fun c1 c2 -> compare (peak c2) (peak c1)) rest
    in
    let order = List.concat_map (fun c -> c.labels) (entry_chain :: rest_sorted) in
    let by_label = Hashtbl.create 16 in
    List.iter (fun (b : Func.block) -> Hashtbl.replace by_label b.Func.label b) blocks;
    let new_blocks = List.map (fun l -> Hashtbl.find by_label l) order in
    let changed =
      List.map (fun (b : Func.block) -> b.Func.label) new_blocks
      <> List.map (fun (b : Func.block) -> b.Func.label) blocks
    in
    f.Func.blocks <- new_blocks;
    changed
  end
