(** Textual assembly for the virtual machine.

    A human-readable, re-parseable rendering of object-file contents:
    what [cmoc dump --what asm] prints and [cmoc assemble] reads back.
    The format is line-oriented:

    {v
    .module m000
    .global state_m000 64 exported
    .init state_m000 3 17        # cell 3 starts at 17
    .func m000_f0 lines=6
        li    r8, 42
        addi  r9, r8, 5
        mul   r9, r9, r4
        bnz   r9, 6
        ld    r3, 2(r2)
        call  m001_f0
        sys   print
        ret
    .end
    v}

    Branch targets are function-relative instruction indices (the
    pre-link form); [call] takes a symbol, [calla] an absolute
    address (post-link).  Comments run from [#] to end of line.
    Printing then parsing is the identity on well-formed object
    contents (round-trip checked by tests). *)

exception Parse_error of int * string
(** (1-based line number, message). *)

val print_func : Format.formatter -> Mach.func_code -> unit

val print_module :
  Format.formatter ->
  module_name:string ->
  globals:Cmo_il.Ilmod.global list ->
  Mach.func_code list ->
  unit

val parse_module :
  string -> string * Cmo_il.Ilmod.global list * Mach.func_code list
(** Parse a full module listing back into (module name, globals,
    function code).  @raise Parse_error on malformed input. *)
