let frame_size (r : Regalloc.result) =
  let vc = r.Regalloc.vcode in
  vc.Isel.max_outgoing + r.Regalloc.spill_slots
  + List.length r.Regalloc.used_callee_saved

let emit (r : Regalloc.result) =
  let vc = r.Regalloc.vcode in
  let frame = frame_size r in
  let save_base = vc.Isel.max_outgoing + r.Regalloc.spill_slots in
  let prologue =
    if frame = 0 then []
    else
      Mach.Adjsp (-frame)
      :: List.mapi
           (fun k reg -> Mach.St (reg, Mach.reg_sp, save_base + k))
           r.Regalloc.used_callee_saved
  in
  let epilogue =
    if frame = 0 then []
    else
      List.mapi
        (fun k reg -> Mach.Ld (reg, Mach.reg_sp, save_base + k))
        r.Regalloc.used_callee_saved
      @ [ Mach.Adjsp frame ]
  in
  (* Incoming stack arguments were selected with a sentinel offset. *)
  let fix_incoming i =
    match i with
    | Mach.Ld (d, b, off) when b = Mach.reg_sp && off >= Isel.incoming_base ->
      Mach.Ld (d, b, frame + (off - Isel.incoming_base))
    | other -> other
  in
  (* Entry block must be first in layout. *)
  let blocks =
    match vc.Isel.vblocks with
    | first :: _ when first.Isel.vlabel = vc.Isel.ventry -> vc.Isel.vblocks
    | _ ->
      let entry, rest =
        List.partition
          (fun (b : Isel.vblock) -> b.Isel.vlabel = vc.Isel.ventry)
          vc.Isel.vblocks
      in
      entry @ rest
  in
  (* Pass 1: lay out instructions with symbolic branch targets (block
     labels); record each block's start offset. *)
  let buf = ref [] in
  let len = ref 0 in
  let push i =
    buf := i :: !buf;
    incr len
  in
  let offsets = Hashtbl.create 16 in
  List.iter (fun i -> push (fix_incoming i)) prologue;
  let rec emit_blocks = function
    | [] -> ()
    | (b : Isel.vblock) :: rest ->
      Hashtbl.replace offsets b.Isel.vlabel !len;
      List.iter (fun i -> push (fix_incoming i)) b.Isel.body;
      let next_label =
        match rest with
        | (n : Isel.vblock) :: _ -> Some n.Isel.vlabel
        | [] -> None
      in
      (match b.Isel.vterm with
      | Isel.Vjmp l -> if next_label <> Some l then push (Mach.B l)
      | Isel.Vbr (reg, ifso, ifnot) ->
        if next_label = Some ifnot then push (Mach.Bnz (reg, ifso))
        else if next_label = Some ifso then push (Mach.Bz (reg, ifnot))
        else begin
          push (Mach.Bnz (reg, ifso));
          push (Mach.B ifnot)
        end
      | Isel.Vret ->
        List.iter push epilogue;
        push Mach.Ret);
      emit_blocks rest
  in
  emit_blocks blocks;
  (* Pass 2: resolve block labels to instruction offsets. *)
  let resolve label =
    match Hashtbl.find_opt offsets label with
    | Some off -> off
    | None -> invalid_arg (Printf.sprintf "Codegen: branch to missing block L%d" label)
  in
  let code =
    List.rev !buf
    |> List.map (fun i ->
           match i with
           | Mach.B _ | Mach.Bz _ | Mach.Bnz _ -> Mach.retarget resolve i
           | other -> other)
    |> Array.of_list
  in
  {
    Mach.fname = vc.Isel.vname;
    module_name = vc.Isel.vmodule;
    code;
    src_lines = vc.Isel.vsrc_lines;
  }

let pp_frame_comment ppf (r : Regalloc.result) =
  Format.fprintf ppf
    "frame %d cells (outgoing %d, spills %d, saves %d), %d vregs spilled"
    (frame_size r)
    r.Regalloc.vcode.Isel.max_outgoing r.Regalloc.spill_slots
    (List.length r.Regalloc.used_callee_saved)
    r.Regalloc.spilled_vregs
