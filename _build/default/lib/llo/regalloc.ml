type result = {
  vcode : Isel.vcode;
  spill_slots : int;
  used_callee_saved : Mach.reg list;
  spilled_vregs : int;
}

let is_vreg r = r >= Mach.first_vreg

(* --- liveness over vblocks --- *)

let term_uses = function
  | Isel.Vbr (r, _, _) -> if is_vreg r then [ r ] else []
  | Isel.Vjmp _ | Isel.Vret -> []

let successors = function
  | Isel.Vjmp l -> [ l ]
  | Isel.Vbr (_, a, b) -> [ a; b ]
  | Isel.Vret -> []

let block_liveness (vc : Isel.vcode) =
  let live_in : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Isel.vblock) ->
      Hashtbl.replace live_in b.Isel.vlabel (Hashtbl.create 8);
      Hashtbl.replace live_out b.Isel.vlabel (Hashtbl.create 8))
    vc.Isel.vblocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Isel.vblock) ->
        let out = Hashtbl.find live_out b.Isel.vlabel in
        List.iter
          (fun succ ->
            match Hashtbl.find_opt live_in succ with
            | Some succ_in ->
              Hashtbl.iter
                (fun v () ->
                  if not (Hashtbl.mem out v) then begin
                    Hashtbl.replace out v ();
                    changed := true
                  end)
                succ_in
            | None -> ())
          (successors b.Isel.vterm);
        (* in = (out - defs) + uses, backward *)
        let live = Hashtbl.copy out in
        List.iter (fun v -> Hashtbl.replace live v ()) (term_uses b.Isel.vterm);
        List.iter
          (fun i ->
            List.iter
              (fun d -> if is_vreg d then Hashtbl.remove live d)
              (Mach.defs i);
            List.iter
              (fun u -> if is_vreg u then Hashtbl.replace live u ())
              (Mach.uses i))
          (List.rev b.Isel.body);
        let in_ = Hashtbl.find live_in b.Isel.vlabel in
        Hashtbl.iter
          (fun v () ->
            if not (Hashtbl.mem in_ v) then begin
              Hashtbl.replace in_ v ();
              changed := true
            end)
          live)
      (List.rev vc.Isel.vblocks)
  done;
  (live_in, live_out)

(* --- intervals --- *)

type interval = {
  vreg : int;
  mutable lo : int;
  mutable hi : int;
  mutable weight : float;
      (* Profile-weighted spill cost: each use/def adds the executing
         block's frequency (1 when unprofiled), so the allocator
         evicts the register whose memory traffic would be cheapest —
         the PBO improvement to the allocation cost model the paper's
         section 2 describes. *)
}

let compute_intervals (vc : Isel.vcode) =
  let live_in, live_out = block_liveness vc in
  let intervals : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch v pos w =
    match Hashtbl.find_opt intervals v with
    | Some itv ->
      if pos < itv.lo then itv.lo <- pos;
      if pos > itv.hi then itv.hi <- pos;
      itv.weight <- itv.weight +. w
    | None -> Hashtbl.replace intervals v { vreg = v; lo = pos; hi = pos; weight = w }
  in
  let extend v pos = touch v pos 0.0 in
  let pos = ref 0 in
  List.iter
    (fun (b : Isel.vblock) ->
      let block_start = !pos in
      let w = Float.max 1.0 b.Isel.vfreq in
      List.iter
        (fun i ->
          List.iter (fun d -> if is_vreg d then touch d !pos w) (Mach.defs i);
          List.iter (fun u -> if is_vreg u then touch u !pos w) (Mach.uses i);
          incr pos)
        b.Isel.body;
      List.iter (fun u -> touch u !pos w) (term_uses b.Isel.vterm);
      incr pos;
      let block_end = !pos - 1 in
      Hashtbl.iter
        (fun v () -> extend v block_start)
        (Hashtbl.find live_in b.Isel.vlabel);
      Hashtbl.iter
        (fun v () -> extend v block_end)
        (Hashtbl.find live_out b.Isel.vlabel))
    vc.Isel.vblocks;
  Hashtbl.fold (fun _ itv acc -> itv :: acc) intervals []
  |> List.sort (fun a b ->
         match compare a.lo b.lo with 0 -> compare a.vreg b.vreg | c -> c)

(* --- linear scan --- *)

type assignment = Phys of Mach.reg | Slot of int

let allocate intervals =
  let assignment : (int, assignment) Hashtbl.t = Hashtbl.create 64 in
  let free = ref Mach.allocatable in
  let active = ref [] in  (* sorted ascending by hi *)
  let next_slot = ref 0 in
  let insert_active itv =
    let rec go = function
      | [] -> [ itv ]
      | x :: rest when x.hi <= itv.hi -> x :: go rest
      | rest -> itv :: rest
    in
    active := go !active
  in
  let expire current_lo =
    let expired, live =
      List.partition (fun itv -> itv.hi < current_lo) !active
    in
    List.iter
      (fun itv ->
        match Hashtbl.find assignment itv.vreg with
        | Phys r -> free := r :: !free
        | Slot _ -> ())
      expired;
    active := live
  in
  let fresh_slot () =
    let s = !next_slot in
    next_slot := s + 1;
    s
  in
  List.iter
    (fun itv ->
      expire itv.lo;
      match !free with
      | r :: rest ->
        free := rest;
        Hashtbl.replace assignment itv.vreg (Phys r);
        insert_active itv
      | [] -> (
        (* Spill the cheapest interval: the one with the lowest
           profile-weighted use count, ties broken toward the one
           ending last (the classic linear-scan choice). *)
        let cheaper a b =
          match compare a.weight b.weight with
          | 0 -> compare b.hi a.hi
          | c -> c
        in
        let victim =
          List.fold_left
            (fun best x -> if cheaper x best < 0 then x else best)
            itv !active
        in
        if victim == itv then
          Hashtbl.replace assignment itv.vreg (Slot (fresh_slot ()))
        else begin
          let victim_reg =
            match Hashtbl.find assignment victim.vreg with
            | Phys r -> r
            | Slot _ -> assert false
          in
          Hashtbl.replace assignment victim.vreg (Slot (fresh_slot ()));
          active := List.filter (fun x -> x != victim) !active;
          Hashtbl.replace assignment itv.vreg (Phys victim_reg);
          insert_active itv
        end))
    intervals;
  (assignment, !next_slot)

(* --- rewrite --- *)

(* Slot [s] lives at sp + outgoing + s (see Codegen's frame layout). *)
let rewrite (vc : Isel.vcode) assignment =
  let slot_off s = vc.Isel.max_outgoing + s in
  let lookup v =
    if is_vreg v then Hashtbl.find_opt assignment v else Some (Phys v)
  in
  let used = Hashtbl.create 20 in
  let note_phys r = if List.mem r Mach.allocatable then Hashtbl.replace used r () in
  let rewrite_instr i =
    (* Map spilled uses through scratch registers, spilled defs
       through scratch 3. *)
    let loads = ref [] in
    let stores = ref [] in
    let scratch_uses = ref [ Mach.reg_scratch1; Mach.reg_scratch2 ] in
    let use_map = Hashtbl.create 4 in
    List.iter
      (fun u ->
        match lookup u with
        | Some (Slot s) when not (Hashtbl.mem use_map u) ->
          let scratch =
            match !scratch_uses with
            | r :: rest ->
              scratch_uses := rest;
              r
            | [] -> invalid_arg "Regalloc: out of scratch registers"
          in
          Hashtbl.replace use_map u scratch;
          loads := Mach.Ld (scratch, Mach.reg_sp, slot_off s) :: !loads
        | Some (Slot _) | Some (Phys _) | None -> ())
      (Mach.uses i);
    let def_map = Hashtbl.create 2 in
    List.iter
      (fun d ->
        match lookup d with
        | Some (Slot s) ->
          Hashtbl.replace def_map d Mach.reg_scratch3;
          stores := Mach.St (Mach.reg_scratch3, Mach.reg_sp, slot_off s) :: !stores
        | Some (Phys _) | None -> ())
      (Mach.defs i);
    let map_with table r =
      match Hashtbl.find_opt table r with
      | Some scratch -> scratch
      | None -> (
        match lookup r with
        | Some (Phys p) ->
          note_phys p;
          p
        | Some (Slot _) | None -> r)
    in
    (* Sources map through the use scratch, the destination through
       the def scratch: a register both read and written (e.g.
       [Op (op, d, d, b)] with d spilled) loads into scratch1 and
       stores from scratch3. *)
    List.rev !loads
    @ [ Mach.map_defs_uses ~fdef:(map_with def_map) ~fuse:(map_with use_map) i ]
    @ List.rev !stores
  in
  List.iter
    (fun (b : Isel.vblock) ->
      b.Isel.body <- List.concat_map rewrite_instr b.Isel.body;
      (match b.Isel.vterm with
      | Isel.Vbr (r, ifso, ifnot) -> (
        match lookup r with
        | Some (Slot s) ->
          b.Isel.body <-
            b.Isel.body @ [ Mach.Ld (Mach.reg_scratch1, Mach.reg_sp, slot_off s) ];
          b.Isel.vterm <- Isel.Vbr (Mach.reg_scratch1, ifso, ifnot)
        | Some (Phys p) ->
          note_phys p;
          b.Isel.vterm <- Isel.Vbr (p, ifso, ifnot)
        | None -> ())
      | Isel.Vjmp _ | Isel.Vret -> ()))
    vc.Isel.vblocks;
  used

let run vc =
  let intervals = compute_intervals vc in
  let assignment, slots = allocate intervals in
  let spilled =
    Hashtbl.fold
      (fun _ a acc -> match a with Slot _ -> acc + 1 | Phys _ -> acc)
      assignment 0
  in
  let used = rewrite vc assignment in
  let used_callee_saved =
    List.filter (fun r -> Hashtbl.mem used r) Mach.allocatable
  in
  { vcode = vc; spill_slots = slots; used_callee_saved; spilled_vregs = spilled }
