(** Profile-guided basic-block positioning (Pettis–Hansen [13]).

    Reorders a function's block list — the layout order codegen emits
    — so that hot edges become fall-throughs (no taken-branch penalty)
    and cold blocks sink to the end of the function (fewer i-cache
    lines touched on the hot path).

    The classic bottom-up chaining algorithm: edges are weighted
    (measured block frequencies bound the edge: we use
    [min(freq src, freq dst)], with a bias toward the conditional
    not-taken arm to break ties deterministically), sorted hottest
    first, and chains merged tail-to-head; chains are then emitted
    starting with the entry chain, hottest-first, with
    never-executed chains last.

    Without profile data ([has_profile = false] or all frequencies
    zero) the frontend's order is kept. *)

val run : Cmo_il.Func.t -> bool
(** Returns [true] when the order changed. *)

val cold_fraction : Cmo_il.Func.t -> float
(** Fraction of blocks with zero frequency — reporting aid for the
    layout experiments. *)
