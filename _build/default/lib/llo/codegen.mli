(** Frame building, linearization and final code emission.

    Frame layout (cells above the callee's stack pointer):
    {v
      sp + 0 .. outgoing-1                 outgoing call arguments
      sp + outgoing .. +spills-1           register spill slots
      sp + outgoing+spills .. +saves-1     callee-saved register save area
      sp + frame + k                       caller's outgoing arg k = our
                                           incoming stack argument k
    v}

    The prologue allocates the frame and saves exactly the
    callee-saved registers the allocator used; every return site gets
    the matching epilogue.  Leaf-like functions that need no frame get
    neither — which is precisely why inlining small functions pays on
    this machine.

    Linearization walks blocks in layout order, eliding branches to
    the immediately following block (fall-through), and resolves block
    labels to function-relative instruction indices. *)

val emit : Regalloc.result -> Mach.func_code
(** Emits final, allocator-processed code.  The result still contains
    symbolic [Lga]/[Call_sym] references; the linker resolves them. *)

val pp_frame_comment : Format.formatter -> Regalloc.result -> unit
