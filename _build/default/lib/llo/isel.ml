module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Intrinsics = Cmo_il.Intrinsics

type vterm =
  | Vjmp of Instr.label
  | Vbr of Mach.reg * Instr.label * Instr.label
  | Vret

type vblock = {
  vlabel : Instr.label;
  mutable body : Mach.instr list;
  mutable vterm : vterm;
  vfreq : float;
}

type vcode = {
  vname : string;
  vmodule : string;
  arity : int;
  ventry : Instr.label;
  vblocks : vblock list;
  mutable next_vreg : int;
  max_outgoing : int;
  vsrc_lines : int;
}

let incoming_base = 1_000_000

let vreg_of_il r = Mach.first_vreg + r

type ctx = {
  mutable next : int;
  mutable out_rev : Mach.instr list;
  mutable outgoing : int;
}

let fresh ctx =
  let v = ctx.next in
  ctx.next <- v + 1;
  v

let emit ctx i = ctx.out_rev <- i :: ctx.out_rev

(* Materialize an operand into a register (possibly a fresh temp). *)
let operand_reg ctx = function
  | Instr.Reg r -> vreg_of_il r
  | Instr.Imm 0L -> Mach.reg_zero
  | Instr.Imm c ->
    let t = fresh ctx in
    emit ctx (Mach.Li (t, c));
    t

let commutative = function
  | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor | Instr.Eq
  | Instr.Ne -> true
  | Instr.Sub | Instr.Div | Instr.Rem | Instr.Shl | Instr.Shr | Instr.Lt
  | Instr.Le | Instr.Gt | Instr.Ge -> false

let select_call ctx (c : Instr.call) =
  (* Register arguments. *)
  List.iteri
    (fun i a ->
      if i < Mach.num_arg_regs then
        match a with
        | Instr.Imm v -> emit ctx (Mach.Li (Mach.reg_arg i, v))
        | Instr.Reg r -> emit ctx (Mach.Mv (Mach.reg_arg i, vreg_of_il r))
      else begin
        (* Outgoing stack argument in the caller frame's bottom. *)
        let slot = i - Mach.num_arg_regs in
        ctx.outgoing <- max ctx.outgoing (slot + 1);
        let src = operand_reg ctx a in
        emit ctx (Mach.St (src, Mach.reg_sp, slot))
      end)
    c.Instr.args;
  (if c.Instr.callee = Intrinsics.print_name then emit ctx (Mach.Sys Mach.Sys_print)
   else if c.Instr.callee = Intrinsics.arg_name then emit ctx (Mach.Sys Mach.Sys_arg)
   else emit ctx (Mach.Call_sym c.Instr.callee));
  match c.Instr.dst with
  | Some d -> emit ctx (Mach.Mv (vreg_of_il d, Mach.reg_rv))
  | None -> ()

let select ~module_name (f : Func.t) =
  let ctx =
    { next = Mach.first_vreg + f.Func.next_reg; out_rev = []; outgoing = 0 }
  in
  (* Leaf-function optimization: when the body performs no calls (so
     nothing can clobber the argument registers), register parameters
     live directly in their argument registers — a frameless leaf
     needs neither landing moves nor callee-saved registers for its
     parameters. *)
  let is_leaf =
    f.Func.arity <= Mach.num_arg_regs
    && List.for_all
         (fun (b : Func.block) ->
           List.for_all
             (fun i -> match i with Instr.Call _ -> false | _ -> true)
             b.Func.instrs)
         f.Func.blocks
  in
  let vreg_of_il r =
    if is_leaf && r < f.Func.arity then Mach.reg_arg r else vreg_of_il r
  in
  let operand_reg ctx = function
    | Instr.Reg r -> vreg_of_il r
    | Instr.Imm 0L -> Mach.reg_zero
    | Instr.Imm c ->
      let t = fresh ctx in
      emit ctx (Mach.Li (t, c));
      t
  in
  let select_binop ctx op d a b =
    let d = vreg_of_il d in
    match (a, b) with
    | Instr.Imm x, Instr.Imm y -> emit ctx (Mach.Li (d, Instr.eval_binop op x y))
    | Instr.Reg ra, Instr.Imm y -> emit ctx (Mach.Opi (op, d, vreg_of_il ra, y))
    | Instr.Imm x, Instr.Reg rb when commutative op ->
      emit ctx (Mach.Opi (op, d, vreg_of_il rb, x))
    | Instr.Imm _, Instr.Reg rb ->
      let t = operand_reg ctx a in
      emit ctx (Mach.Op (op, d, t, vreg_of_il rb))
    | Instr.Reg ra, Instr.Reg rb ->
      emit ctx (Mach.Op (op, d, vreg_of_il ra, vreg_of_il rb))
  in
  let select_addr ctx { Instr.base; index } =
    match index with
    | Instr.Imm k ->
      let t = fresh ctx in
      emit ctx (Mach.Lga (t, base));
      (t, Int64.to_int k)
    | Instr.Reg r ->
      let t = fresh ctx in
      emit ctx (Mach.Lga (t, base));
      let addr = fresh ctx in
      emit ctx (Mach.Op (Instr.Add, addr, t, vreg_of_il r));
      (addr, 0)
  in
  let select_instr ctx i =
    match i with
    | Instr.Move (d, Instr.Imm c) -> emit ctx (Mach.Li (vreg_of_il d, c))
    | Instr.Move (d, Instr.Reg s) ->
      emit ctx (Mach.Mv (vreg_of_il d, vreg_of_il s))
    | Instr.Unop (op, d, a) ->
      let s = operand_reg ctx a in
      emit ctx (Mach.Un (op, vreg_of_il d, s))
    | Instr.Binop (op, d, a, b) -> select_binop ctx op d a b
    | Instr.Load (d, addr) ->
      let base, off = select_addr ctx addr in
      emit ctx (Mach.Ld (vreg_of_il d, base, off))
    | Instr.Store (addr, v) ->
      let src = operand_reg ctx v in
      let base, off = select_addr ctx addr in
      emit ctx (Mach.St (src, base, off))
    | Instr.Call c -> select_call ctx c
    | Instr.Probe p -> emit ctx (Mach.Cnt p)
  in
  let select_block (b : Func.block) =
    ctx.out_rev <- [];
    (* Parameter landing code in the entry block (non-leaf only). *)
    if b.Func.label = f.Func.entry && not is_leaf then
      for i = 0 to f.Func.arity - 1 do
        if i < Mach.num_arg_regs then
          emit ctx (Mach.Mv (vreg_of_il i, Mach.reg_arg i))
        else
          emit ctx
            (Mach.Ld
               (vreg_of_il i, Mach.reg_sp,
                incoming_base + (i - Mach.num_arg_regs)))
      done;
    List.iter (select_instr ctx) b.Func.instrs;
    let vterm =
      match b.Func.term with
      | Instr.Jmp l -> Vjmp l
      | Instr.Br { cond; ifso; ifnot } -> (
        match cond with
        | Instr.Imm c -> Vjmp (if c <> 0L then ifso else ifnot)
        | Instr.Reg r -> Vbr (vreg_of_il r, ifso, ifnot))
      | Instr.Ret v ->
        (match v with
        | Some (Instr.Imm c) -> emit ctx (Mach.Li (Mach.reg_rv, c))
        | Some (Instr.Reg r) -> emit ctx (Mach.Mv (Mach.reg_rv, vreg_of_il r))
        | None -> emit ctx (Mach.Li (Mach.reg_rv, 0L)));
        Vret
    in
    { vlabel = b.Func.label; body = List.rev ctx.out_rev; vterm; vfreq = b.Func.freq }
  in
  let vblocks = List.map select_block f.Func.blocks in
  {
    vname = f.Func.name;
    vmodule = module_name;
    arity = f.Func.arity;
    ventry = f.Func.entry;
    vblocks;
    next_vreg = ctx.next;
    max_outgoing = ctx.outgoing;
    vsrc_lines = f.Func.src_lines;
  }
