(** Machine-level peephole optimization.

    Local rewrites on allocated code:
    - strength reduction: multiply by a power of two becomes a shift
      (division is left alone: arithmetic shift right disagrees with
      truncating division on negative values);
    - algebraic identities: [x+0], [x-0], [x*1], [x|0], [x^0],
      [x<<0], [x>>0] become moves; [x*0], [x&0] become zero loads;
    - self-moves are deleted;
    - a [Li] immediately re-materializing the same constant into the
      same register is deleted. *)

val run : Isel.vcode -> int
(** Number of rewrites applied. *)
