module Instr = Cmo_il.Instr
module Codec = Cmo_support.Codec
module W = Codec.Writer
module R = Codec.Reader

type reg = int

let reg_zero = 0
let reg_scratch1 = 1
let reg_sp = 2
let reg_rv = 3

let num_arg_regs = 4

let reg_arg i =
  assert (i >= 0 && i < num_arg_regs);
  4 + i

let reg_scratch2 = 28
let reg_scratch3 = 29

let allocatable = List.init 20 (fun i -> 8 + i)

let first_vreg = 32

type sys = Sys_print | Sys_arg

type instr =
  | Li of reg * int64
  | Mv of reg * reg
  | Op of Instr.binop * reg * reg * reg
  | Opi of Instr.binop * reg * reg * int64
  | Un of Instr.unop * reg * reg
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Lga of reg * string
  | B of int
  | Bz of reg * int
  | Bnz of reg * int
  | Call_sym of string
  | Call_abs of int
  | Sys of sys
  | Ret
  | Adjsp of int
  | Cnt of int
  | Halt

type func_code = {
  fname : string;
  module_name : string;
  code : instr array;
  src_lines : int;
}

let defs = function
  | Li (d, _) | Mv (d, _) | Op (_, d, _, _) | Opi (_, d, _, _) | Un (_, d, _)
  | Ld (d, _, _) | Lga (d, _) -> [ d ]
  | Sys _ -> [ reg_rv ]
  | St _ | B _ | Bz _ | Bnz _ | Call_sym _ | Call_abs _ | Ret | Adjsp _
  | Cnt _ | Halt -> []

let uses = function
  | Li _ | Lga _ | B _ | Call_sym _ | Call_abs _ | Adjsp _ | Cnt _ | Halt -> []
  | Mv (_, s) | Un (_, _, s) | Opi (_, _, s, _) -> [ s ]
  | Op (_, _, a, b) -> [ a; b ]
  | Ld (_, base, _) -> [ base ]
  | St (v, base, _) -> [ v; base ]
  | Bz (r, _) | Bnz (r, _) -> [ r ]
  | Sys _ -> [ reg_arg 0 ]
  | Ret -> [ reg_rv ]

let map_regs f = function
  | Li (d, i) -> Li (f d, i)
  | Mv (d, s) -> Mv (f d, f s)
  | Op (op, d, a, b) -> Op (op, f d, f a, f b)
  | Opi (op, d, s, i) -> Opi (op, f d, f s, i)
  | Un (op, d, s) -> Un (op, f d, f s)
  | Ld (d, b, o) -> Ld (f d, f b, o)
  | St (v, b, o) -> St (f v, f b, o)
  | Lga (d, s) -> Lga (f d, s)
  | Bz (r, t) -> Bz (f r, t)
  | Bnz (r, t) -> Bnz (f r, t)
  | (B _ | Call_sym _ | Call_abs _ | Sys _ | Ret | Adjsp _ | Cnt _ | Halt) as i
    -> i

let map_defs_uses ~fdef ~fuse = function
  | Li (d, i) -> Li (fdef d, i)
  | Mv (d, s) -> Mv (fdef d, fuse s)
  | Op (op, d, a, b) -> Op (op, fdef d, fuse a, fuse b)
  | Opi (op, d, s, i) -> Opi (op, fdef d, fuse s, i)
  | Un (op, d, s) -> Un (op, fdef d, fuse s)
  | Ld (d, b, o) -> Ld (fdef d, fuse b, o)
  | St (v, b, o) -> St (fuse v, fuse b, o)
  | Lga (d, s) -> Lga (fdef d, s)
  | Bz (r, t) -> Bz (fuse r, t)
  | Bnz (r, t) -> Bnz (fuse r, t)
  | ( B _ | Call_sym _ | Call_abs _ | Sys _ | Ret | Adjsp _ | Cnt _ | Halt ) as i
    -> i

let retarget f = function
  | B t -> B (f t)
  | Bz (r, t) -> Bz (r, f t)
  | Bnz (r, t) -> Bnz (r, f t)
  | Call_abs t -> Call_abs (f t)
  | ( Li _ | Mv _ | Op _ | Opi _ | Un _ | Ld _ | St _ | Lga _ | Call_sym _
    | Sys _ | Ret | Adjsp _ | Cnt _ | Halt ) as i -> i

let instr_bytes = 4

let sys_name = function Sys_print -> "print" | Sys_arg -> "arg"

let pp_instr ppf = function
  | Li (d, i) -> Format.fprintf ppf "li    r%d, %Ld" d i
  | Mv (d, s) -> Format.fprintf ppf "mv    r%d, r%d" d s
  | Op (op, d, a, b) ->
    Format.fprintf ppf "%-5s r%d, r%d, r%d" (Instr.binop_name op) d a b
  | Opi (op, d, s, i) ->
    Format.fprintf ppf "%-4si r%d, r%d, %Ld" (Instr.binop_name op) d s i
  | Un (Instr.Neg, d, s) -> Format.fprintf ppf "neg   r%d, r%d" d s
  | Un (Instr.Not, d, s) -> Format.fprintf ppf "not   r%d, r%d" d s
  | Ld (d, b, o) -> Format.fprintf ppf "ld    r%d, %d(r%d)" d o b
  | St (v, b, o) -> Format.fprintf ppf "st    r%d, %d(r%d)" v o b
  | Lga (d, s) -> Format.fprintf ppf "lga   r%d, %s" d s
  | B t -> Format.fprintf ppf "b     %d" t
  | Bz (r, t) -> Format.fprintf ppf "bz    r%d, %d" r t
  | Bnz (r, t) -> Format.fprintf ppf "bnz   r%d, %d" r t
  | Call_sym s -> Format.fprintf ppf "call  %s" s
  | Call_abs a -> Format.fprintf ppf "call  @%d" a
  | Sys s -> Format.fprintf ppf "sys   %s" (sys_name s)
  | Ret -> Format.pp_print_string ppf "ret"
  | Adjsp n -> Format.fprintf ppf "adjsp %d" n
  | Cnt p -> Format.fprintf ppf "cnt   %d" p
  | Halt -> Format.pp_print_string ppf "halt"

let pp_func ppf fc =
  Format.fprintf ppf "@[<v># %s (%s)" fc.fname fc.module_name;
  Array.iteri
    (fun i instr -> Format.fprintf ppf "@,%4d: %a" i pp_instr instr)
    fc.code;
  Format.fprintf ppf "@]"

(* --- codec --- *)

let binop_tag = function
  | Instr.Add -> 0 | Instr.Sub -> 1 | Instr.Mul -> 2 | Instr.Div -> 3
  | Instr.Rem -> 4 | Instr.And -> 5 | Instr.Or -> 6 | Instr.Xor -> 7
  | Instr.Shl -> 8 | Instr.Shr -> 9 | Instr.Eq -> 10 | Instr.Ne -> 11
  | Instr.Lt -> 12 | Instr.Le -> 13 | Instr.Gt -> 14 | Instr.Ge -> 15

let binop_of_tag = function
  | 0 -> Instr.Add | 1 -> Instr.Sub | 2 -> Instr.Mul | 3 -> Instr.Div
  | 4 -> Instr.Rem | 5 -> Instr.And | 6 -> Instr.Or | 7 -> Instr.Xor
  | 8 -> Instr.Shl | 9 -> Instr.Shr | 10 -> Instr.Eq | 11 -> Instr.Ne
  | 12 -> Instr.Lt | 13 -> Instr.Le | 14 -> Instr.Gt | 15 -> Instr.Ge
  | t -> R.corrupt (Printf.sprintf "bad mach binop tag %d" t)

let write_instr w = function
  | Li (d, i) -> W.byte w 0; W.uvarint w d; W.int64 w i
  | Mv (d, s) -> W.byte w 1; W.uvarint w d; W.uvarint w s
  | Op (op, d, a, b) ->
    W.byte w 2; W.byte w (binop_tag op); W.uvarint w d; W.uvarint w a;
    W.uvarint w b
  | Opi (op, d, s, i) ->
    W.byte w 3; W.byte w (binop_tag op); W.uvarint w d; W.uvarint w s;
    W.int64 w i
  | Un (op, d, s) ->
    W.byte w 4;
    W.byte w (match op with Instr.Neg -> 0 | Instr.Not -> 1);
    W.uvarint w d; W.uvarint w s
  | Ld (d, b, o) -> W.byte w 5; W.uvarint w d; W.uvarint w b; W.varint w o
  | St (v, b, o) -> W.byte w 6; W.uvarint w v; W.uvarint w b; W.varint w o
  | Lga (d, s) -> W.byte w 7; W.uvarint w d; W.string w s
  | B t -> W.byte w 8; W.varint w t
  | Bz (r, t) -> W.byte w 9; W.uvarint w r; W.varint w t
  | Bnz (r, t) -> W.byte w 10; W.uvarint w r; W.varint w t
  | Call_sym s -> W.byte w 11; W.string w s
  | Call_abs a -> W.byte w 12; W.varint w a
  | Sys Sys_print -> W.byte w 13
  | Sys Sys_arg -> W.byte w 14
  | Ret -> W.byte w 15
  | Adjsp n -> W.byte w 16; W.varint w n
  | Cnt p -> W.byte w 17; W.uvarint w p
  | Halt -> W.byte w 18

let read_instr r =
  match R.byte r with
  | 0 -> let d = R.uvarint r in Li (d, R.int64 r)
  | 1 -> let d = R.uvarint r in Mv (d, R.uvarint r)
  | 2 ->
    let op = binop_of_tag (R.byte r) in
    let d = R.uvarint r in
    let a = R.uvarint r in
    Op (op, d, a, R.uvarint r)
  | 3 ->
    let op = binop_of_tag (R.byte r) in
    let d = R.uvarint r in
    let s = R.uvarint r in
    Opi (op, d, s, R.int64 r)
  | 4 ->
    let op = match R.byte r with
      | 0 -> Instr.Neg
      | 1 -> Instr.Not
      | t -> R.corrupt (Printf.sprintf "bad mach unop tag %d" t)
    in
    let d = R.uvarint r in
    Un (op, d, R.uvarint r)
  | 5 -> let d = R.uvarint r in let b = R.uvarint r in Ld (d, b, R.varint r)
  | 6 -> let v = R.uvarint r in let b = R.uvarint r in St (v, b, R.varint r)
  | 7 -> let d = R.uvarint r in Lga (d, R.string r)
  | 8 -> B (R.varint r)
  | 9 -> let reg = R.uvarint r in Bz (reg, R.varint r)
  | 10 -> let reg = R.uvarint r in Bnz (reg, R.varint r)
  | 11 -> Call_sym (R.string r)
  | 12 -> Call_abs (R.varint r)
  | 13 -> Sys Sys_print
  | 14 -> Sys Sys_arg
  | 15 -> Ret
  | 16 -> Adjsp (R.varint r)
  | 17 -> Cnt (R.uvarint r)
  | 18 -> Halt
  | t -> R.corrupt (Printf.sprintf "bad mach instr tag %d" t)

let encode_func fc =
  let w = W.create () in
  W.string w fc.fname;
  W.string w fc.module_name;
  W.uvarint w fc.src_lines;
  W.array w (write_instr w) fc.code;
  W.contents w

let decode_func bytes =
  let r = R.of_string bytes in
  let fname = R.string r in
  let module_name = R.string r in
  let src_lines = R.uvarint r in
  let code = R.array r read_instr in
  { fname; module_name; code; src_lines }
