(** Local list scheduling.

    The LLO's instruction scheduler (the paper's section 3 lists
    scheduling among LLO's machine-level optimizations, citing the
    PA-8000 scheduler [4]).  Targets the machine's one pipeline
    hazard: an instruction that consumes the result of the
    immediately preceding load stalls
    ({!Cmo_vm.Costmodel.load_use_stall} cycles), so the scheduler
    tries to put an independent instruction in each load's shadow.

    Scope and safety:
    - runs on {!Isel.vcode} before register allocation (virtual
      registers expose more independence than allocated ones);
    - calls, system calls and probes are scheduling barriers: nothing
      moves across them (the Mach instruction set does not model their
      implicit argument-register reads, and observable effect order
      must hold);
    - within a barrier-free segment, dependence edges are RAW/WAR/WAW
      on registers plus memory order (loads may swap with loads;
      stores order against every other memory access);
    - ready instructions are chosen by critical-path height, avoiding
      a consumer of the just-scheduled load when any alternative is
      ready; ties break on original position, so scheduling is
      deterministic. *)

val run : Isel.vcode -> int
(** Returns the number of instructions moved from their original
    relative position. *)
