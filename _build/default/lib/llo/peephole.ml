module Instr = Cmo_il.Instr

let log2_exact v =
  if Int64.compare v 1L <= 0 then None
  else begin
    let rec go shift =
      if shift > 62 then None
      else begin
        let p = Int64.shift_left 1L shift in
        if Int64.equal p v then Some shift
        else if Int64.compare p v > 0 then None
        else go (shift + 1)
      end
    in
    go 1
  end

let rewrite_instr count i =
  match i with
  | Mach.Opi (Instr.Mul, d, s, v) -> (
    match log2_exact v with
    | Some shift ->
      incr count;
      Some (Mach.Opi (Instr.Shl, d, s, Int64.of_int shift))
    | None ->
      if Int64.equal v 1L then begin
        incr count;
        Some (Mach.Mv (d, s))
      end
      else if Int64.equal v 0L then begin
        incr count;
        Some (Mach.Li (d, 0L))
      end
      else Some i)
  | Mach.Opi ((Instr.Add | Instr.Sub | Instr.Or | Instr.Xor | Instr.Shl | Instr.Shr), d, s, 0L) ->
    incr count;
    Some (Mach.Mv (d, s))
  | Mach.Opi (Instr.And, d, _, 0L) ->
    incr count;
    Some (Mach.Li (d, 0L))
  | Mach.Mv (d, s) when d = s ->
    incr count;
    None
  | _ -> Some i

(* Delete [Li r, c] when the previous instruction already was
   [Li r, c] (same register, same constant, no intervening def). *)
let dedup_li count instrs =
  let rec go prev acc = function
    | [] -> List.rev acc
    | (Mach.Li (d, c) as i) :: rest -> (
      match prev with
      | Some (pd, pc) when pd = d && Int64.equal pc c ->
        incr count;
        go prev acc rest
      | _ -> go (Some (d, c)) (i :: acc) rest)
    | i :: rest -> go None (i :: acc) rest
  in
  go None [] instrs

let run (vc : Isel.vcode) =
  let count = ref 0 in
  List.iter
    (fun (b : Isel.vblock) ->
      b.Isel.body <-
        List.filter_map (rewrite_instr count) b.Isel.body |> dedup_li count)
    vc.Isel.vblocks;
  !count
