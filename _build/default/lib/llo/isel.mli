(** Instruction selection: IL to virtual machine code.

    Produces {!vcode}: per-block machine instructions over an infinite
    virtual register file (IL register [r] becomes virtual register
    [Mach.first_vreg + r]; selection temporaries follow).  Physical
    registers appear only where the ABI demands them — argument
    registers around calls, the return-value register, the stack
    pointer — and are never touched by the register allocator.

    Calls pass the first four arguments in registers and the rest in
    the caller's outgoing-argument area at the bottom of its frame
    ([max_outgoing] records how many cells that needs).  Incoming
    stack arguments are read frame-relative through the
    {!incoming_base} offset sentinel, which {!Codegen} rewrites once
    the frame size is known. *)

type vterm =
  | Vjmp of Cmo_il.Instr.label
  | Vbr of Mach.reg * Cmo_il.Instr.label * Cmo_il.Instr.label
      (** Branch if register non-zero. *)
  | Vret  (** Return value already in [Mach.reg_rv]. *)

type vblock = {
  vlabel : Cmo_il.Instr.label;
  mutable body : Mach.instr list;
  mutable vterm : vterm;
  vfreq : float;
}

type vcode = {
  vname : string;
  vmodule : string;
  arity : int;
  ventry : Cmo_il.Instr.label;
  vblocks : vblock list;  (** In the function's layout order. *)
  mutable next_vreg : int;
  max_outgoing : int;  (** Cells of outgoing stack arguments. *)
  vsrc_lines : int;
}

val incoming_base : int
(** Sentinel added to incoming-stack-argument offsets; rewritten by
    {!Codegen} to [frame + k]. *)

val select : module_name:string -> Cmo_il.Func.t -> vcode
(** The function's block list order is taken as the layout order
    (run {!Layout.run} first for profile-guided positioning). *)

val vreg_of_il : Cmo_il.Instr.reg -> Mach.reg
