module Instr = Cmo_il.Instr
module Ilmod = Cmo_il.Ilmod

exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt

(* ---------- printing ---------- *)

let mnemonic_of_binop op = Instr.binop_name op

let print_instr ppf i =
  match i with
  | Mach.Li (d, v) -> Format.fprintf ppf "li    r%d, %Ld" d v
  | Mach.Mv (d, s) -> Format.fprintf ppf "mv    r%d, r%d" d s
  | Mach.Op (op, d, a, b) ->
    Format.fprintf ppf "%-5s r%d, r%d, r%d" (mnemonic_of_binop op) d a b
  | Mach.Opi (op, d, s, v) ->
    Format.fprintf ppf "%-5s r%d, r%d, %Ld" (mnemonic_of_binop op ^ "i") d s v
  | Mach.Un (Instr.Neg, d, s) -> Format.fprintf ppf "neg   r%d, r%d" d s
  | Mach.Un (Instr.Not, d, s) -> Format.fprintf ppf "not   r%d, r%d" d s
  | Mach.Ld (d, b, o) -> Format.fprintf ppf "ld    r%d, %d(r%d)" d o b
  | Mach.St (v, b, o) -> Format.fprintf ppf "st    r%d, %d(r%d)" v o b
  | Mach.Lga (d, s) -> Format.fprintf ppf "lga   r%d, %s" d s
  | Mach.B t -> Format.fprintf ppf "b     %d" t
  | Mach.Bz (r, t) -> Format.fprintf ppf "bz    r%d, %d" r t
  | Mach.Bnz (r, t) -> Format.fprintf ppf "bnz   r%d, %d" r t
  | Mach.Call_sym s -> Format.fprintf ppf "call  %s" s
  | Mach.Call_abs a -> Format.fprintf ppf "calla %d" a
  | Mach.Sys Mach.Sys_print -> Format.fprintf ppf "sys   print"
  | Mach.Sys Mach.Sys_arg -> Format.fprintf ppf "sys   arg"
  | Mach.Ret -> Format.fprintf ppf "ret"
  | Mach.Adjsp n -> Format.fprintf ppf "adjsp %d" n
  | Mach.Cnt p -> Format.fprintf ppf "cnt   %d" p
  | Mach.Halt -> Format.fprintf ppf "halt"

let print_func ppf (fc : Mach.func_code) =
  Format.fprintf ppf ".func %s lines=%d@." fc.Mach.fname fc.Mach.src_lines;
  Array.iter (fun i -> Format.fprintf ppf "    %a@." print_instr i) fc.Mach.code;
  Format.fprintf ppf ".end@."

let print_module ppf ~module_name ~globals codes =
  Format.fprintf ppf ".module %s@." module_name;
  List.iter
    (fun (g : Ilmod.global) ->
      Format.fprintf ppf ".global %s %d %s@." g.Ilmod.gname g.Ilmod.size
        (if g.Ilmod.exported then "exported" else "local");
      Array.iteri
        (fun idx v ->
          if not (Int64.equal v 0L) then
            Format.fprintf ppf ".init %s %d %Ld@." g.Ilmod.gname idx v)
        g.Ilmod.init)
    globals;
  List.iter (fun fc -> print_func ppf fc) codes

(* ---------- parsing ---------- *)

(* Tokenize one instruction line: words separated by spaces, commas
   and the [OFF(rB)] parentheses. *)
let tokenize line_text =
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | ',' | '(' | ')' -> flush ()
      | c -> Buffer.add_char buf c)
    line_text;
  flush ();
  List.rev !out

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let reg line tok =
  if String.length tok >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some r when r >= 0 && r < Mach.first_vreg -> r
    | Some _ | None -> fail line "bad register %S" tok
  else fail line "expected a register, found %S" tok

let int_tok line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, found %S" tok

let int64_tok line tok =
  match Int64.of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, found %S" tok

let binop_of_mnemonic m =
  List.find_opt
    (fun op -> Instr.binop_name op = m)
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
      Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr; Instr.Eq; Instr.Ne;
      Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ]

let parse_instr line toks =
  match toks with
  | [ "li"; d; v ] -> Mach.Li (reg line d, int64_tok line v)
  | [ "mv"; d; s ] -> Mach.Mv (reg line d, reg line s)
  | [ "neg"; d; s ] -> Mach.Un (Instr.Neg, reg line d, reg line s)
  | [ "not"; d; s ] -> Mach.Un (Instr.Not, reg line d, reg line s)
  | [ "ld"; d; o; b ] -> Mach.Ld (reg line d, reg line b, int_tok line o)
  | [ "st"; v; o; b ] -> Mach.St (reg line v, reg line b, int_tok line o)
  | [ "lga"; d; s ] -> Mach.Lga (reg line d, s)
  | [ "b"; t ] -> Mach.B (int_tok line t)
  | [ "bz"; r; t ] -> Mach.Bz (reg line r, int_tok line t)
  | [ "bnz"; r; t ] -> Mach.Bnz (reg line r, int_tok line t)
  | [ "call"; s ] -> Mach.Call_sym s
  | [ "calla"; t ] -> Mach.Call_abs (int_tok line t)
  | [ "sys"; "print" ] -> Mach.Sys Mach.Sys_print
  | [ "sys"; "arg" ] -> Mach.Sys Mach.Sys_arg
  | [ "ret" ] -> Mach.Ret
  | [ "adjsp"; n ] -> Mach.Adjsp (int_tok line n)
  | [ "cnt"; p ] -> Mach.Cnt (int_tok line p)
  | [ "halt" ] -> Mach.Halt
  | [ m; d; a; b ] -> (
    (* Three-operand ALU forms: [op rD, rA, rB] or [opi rD, rS, IMM]. *)
    match binop_of_mnemonic m with
    | Some op -> Mach.Op (op, reg line d, reg line a, reg line b)
    | None ->
      if String.length m > 1 && m.[String.length m - 1] = 'i' then begin
        match binop_of_mnemonic (String.sub m 0 (String.length m - 1)) with
        | Some op -> Mach.Opi (op, reg line d, reg line a, int64_tok line b)
        | None -> fail line "unknown mnemonic %S" m
      end
      else fail line "unknown mnemonic %S" m)
  | m :: _ -> fail line "unknown or malformed instruction %S" m
  | [] -> fail line "empty instruction"

type parse_state = {
  mutable module_name : string option;
  mutable globals_rev : Ilmod.global list;
  mutable funcs_rev : Mach.func_code list;
  mutable current : (string * int * Mach.instr list) option;
      (* (name, src_lines, reversed instrs) *)
}

let key_value line tok key =
  match String.index_opt tok '=' with
  | Some i when String.sub tok 0 i = key ->
    int_tok line (String.sub tok (i + 1) (String.length tok - i - 1))
  | _ -> fail line "expected %s=N, found %S" key tok

let parse_module text =
  let st =
    { module_name = None; globals_rev = []; funcs_rev = []; current = None }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let toks = tokenize (strip_comment raw) in
      match (toks, st.current) with
      | [], _ -> ()
      | ".module" :: rest, None -> (
        match rest with
        | [ name ] ->
          if st.module_name <> None then fail line "duplicate .module";
          st.module_name <- Some name
        | _ -> fail line ".module takes one name")
      | ".global" :: rest, None -> (
        match rest with
        | [ name; size; vis ] ->
          let exported =
            match vis with
            | "exported" -> true
            | "local" -> false
            | other -> fail line "bad visibility %S" other
          in
          let size = int_tok line size in
          if size < 1 then fail line "global %s has bad size" name;
          st.globals_rev <-
            { Ilmod.gname = name; size; exported; init = Array.make size 0L }
            :: st.globals_rev
        | _ -> fail line ".global NAME SIZE exported|local")
      | ".init" :: rest, None -> (
        match rest with
        | [ name; idx_tok; v ] -> (
          match
            List.find_opt
              (fun g -> g.Ilmod.gname = name)
              st.globals_rev
          with
          | Some g ->
            let i = int_tok line idx_tok in
            if i < 0 || i >= g.Ilmod.size then
              fail line ".init index %d out of bounds for %s" i name;
            g.Ilmod.init.(i) <- int64_tok line v
          | None -> fail line ".init for undeclared global %s" name)
        | _ -> fail line ".init NAME INDEX VALUE")
      | ".func" :: rest, None -> (
        match rest with
        | [ name; kv ] ->
          st.current <- Some (name, key_value line kv "lines", [])
        | [ name ] -> st.current <- Some (name, 0, [])
        | _ -> fail line ".func NAME [lines=N]")
      | [ ".end" ], Some (name, src_lines, instrs_rev) ->
        let module_name =
          match st.module_name with
          | Some m -> m
          | None -> fail line ".end before .module"
        in
        st.funcs_rev <-
          {
            Mach.fname = name;
            module_name;
            src_lines;
            code = Array.of_list (List.rev instrs_rev);
          }
          :: st.funcs_rev;
        st.current <- None
      | directive :: _, None when String.length directive > 0 && directive.[0] = '.'
        -> fail line "unknown directive %S" directive
      | _ :: _, None -> fail line "instruction outside .func/.end"
      | toks, Some (name, src_lines, instrs_rev) ->
        let i = parse_instr line toks in
        st.current <- Some (name, src_lines, i :: instrs_rev))
    lines;
  (match st.current with
  | Some (name, _, _) ->
    fail (List.length lines) "missing .end for function %s" name
  | None -> ());
  match st.module_name with
  | None -> fail 1 "missing .module directive"
  | Some name ->
    (* Trim trailing zero cells from initializers so round-trips are
       tidy (the loader zero-fills anyway). *)
    let globals =
      List.rev_map
        (fun (g : Ilmod.global) ->
          let last_nonzero = ref (-1) in
          Array.iteri
            (fun i v -> if not (Int64.equal v 0L) then last_nonzero := i)
            g.Ilmod.init;
          { g with Ilmod.init = Array.sub g.Ilmod.init 0 (!last_nonzero + 1) })
        st.globals_rev
    in
    (name, globals, List.rev st.funcs_rev)
