lib/llo/codegen.ml: Array Format Hashtbl Isel List Mach Printf Regalloc
