lib/llo/isel.mli: Cmo_il Mach
