lib/llo/sched.mli: Isel
