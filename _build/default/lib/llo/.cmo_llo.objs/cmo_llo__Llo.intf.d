lib/llo/llo.mli: Cmo_il Cmo_naim Mach
