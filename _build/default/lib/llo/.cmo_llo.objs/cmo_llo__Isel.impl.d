lib/llo/isel.ml: Cmo_il Int64 List Mach
