lib/llo/sched.ml: Array Isel List Mach
