lib/llo/mach.mli: Cmo_il Format
