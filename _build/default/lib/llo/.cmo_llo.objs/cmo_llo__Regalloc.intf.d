lib/llo/regalloc.mli: Isel Mach
