lib/llo/peephole.ml: Cmo_il Int64 Isel List Mach
