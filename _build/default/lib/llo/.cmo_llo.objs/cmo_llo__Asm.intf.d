lib/llo/asm.mli: Cmo_il Format Mach
