lib/llo/layout.mli: Cmo_il
