lib/llo/regalloc.ml: Float Hashtbl Isel List Mach
