lib/llo/mach.ml: Array Cmo_il Cmo_support Format List Printf
