lib/llo/llo.ml: Array Atomic Cmo_il Cmo_naim Codegen Domain Isel Layout List Mach Option Peephole Regalloc Sched
