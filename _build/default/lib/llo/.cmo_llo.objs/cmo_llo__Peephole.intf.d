lib/llo/peephole.mli: Isel
