lib/llo/layout.ml: Cmo_il Float Hashtbl List Option
