lib/llo/asm.ml: Array Buffer Cmo_il Format Int64 List Mach String
