lib/llo/codegen.mli: Format Mach Regalloc
