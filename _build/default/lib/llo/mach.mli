(** The virtual RISC target machine.

    A PA-RISC-flavoured 64-bit load/store architecture, word (8-byte
    cell) addressed, with a separate code space.  This is the
    substrate that makes the paper's run-time effects measurable on a
    simulator: calls cost prologue/epilogue work, taken branches cost
    a penalty, and instructions are fetched through a direct-mapped
    i-cache, so inlining and profile-guided layout pay off exactly as
    they do on hardware (see {!Cmo_vm.Costmodel}).

    Register convention:
    - [r0]: hardwired zero;
    - [r1], [r28], [r29]: assembler scratch (spill reloads, address
      formation);
    - [r2]: stack pointer, in cells, growing down;
    - [r3]: return value;
    - [r4]-[r7]: arguments 0-3 (further arguments on the stack);
    - [r8]-[r27]: allocatable, callee-saved.

    Because every allocatable register is callee-saved, a call
    clobbers nothing the caller holds in registers; call overhead is
    the callee's save/restore traffic plus control transfer —
    precisely the cost inlining removes.

    The return address is managed by the machine (an internal link
    stack), as on architectures with a hardware return-address stack;
    [Call]/[Ret] prices include it.

    Branch and call targets are function-relative instruction indices
    in a {!func_code}; linking rebases them to absolute addresses and
    resolves symbolic references ([Lga], [Call_sym]). *)

type reg = int

val reg_zero : reg
val reg_scratch1 : reg
val reg_sp : reg
val reg_rv : reg
val reg_arg : int -> reg
(** [reg_arg i] for [i < 4]. *)

val num_arg_regs : int
val reg_scratch2 : reg
val reg_scratch3 : reg
val allocatable : reg list
(** r8..r27 in allocation preference order. *)

val first_vreg : reg
(** Registers at or above this are virtual (pre-allocation). *)

type sys = Sys_print | Sys_arg

type instr =
  | Li of reg * int64
  | Mv of reg * reg
  | Op of Cmo_il.Instr.binop * reg * reg * reg
  | Opi of Cmo_il.Instr.binop * reg * reg * int64
  | Un of Cmo_il.Instr.unop * reg * reg
  | Ld of reg * reg * int  (** [Ld (rd, base, off)]: rd <- mem\[base+off\]. *)
  | St of reg * reg * int  (** [St (rs, base, off)]: mem\[base+off\] <- rs. *)
  | Lga of reg * string  (** Load a global's base address (symbolic). *)
  | B of int
  | Bz of reg * int
  | Bnz of reg * int
  | Call_sym of string  (** Direct call, symbolic (pre-link). *)
  | Call_abs of int  (** Direct call, absolute (post-link). *)
  | Sys of sys
  | Ret
  | Adjsp of int  (** sp <- sp + n cells (negative allocates). *)
  | Cnt of int  (** Bump profile counter (instrumented builds). *)
  | Halt

type func_code = {
  fname : string;
  module_name : string;
  code : instr array;
  src_lines : int;  (** Carried through for reports. *)
}

val defs : instr -> reg list
(** Registers written (excluding implicit sp updates by [Adjsp]). *)

val uses : instr -> reg list

val map_regs : (reg -> reg) -> instr -> instr
(** Rewrite every register operand (defs and uses). *)

val map_defs_uses : fdef:(reg -> reg) -> fuse:(reg -> reg) -> instr -> instr
(** Rewrite destination and source registers through different
    functions — needed when a spilled register is both read and
    written by one instruction. *)

val retarget : (int -> int) -> instr -> instr
(** Rewrite branch/call-absolute targets. *)

val instr_bytes : int
(** Code-space footprint of one instruction (fixed-width encoding);
    the unit of the i-cache model. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_func : Format.formatter -> func_code -> unit

val encode_func : func_code -> string
val decode_func : string -> func_code
(** Object-file payload codec.
    @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)
