lib/driver/isolate.ml: List
