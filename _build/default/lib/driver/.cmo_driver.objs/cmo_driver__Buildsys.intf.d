lib/driver/buildsys.mli: Cmo_profile Options Pipeline
