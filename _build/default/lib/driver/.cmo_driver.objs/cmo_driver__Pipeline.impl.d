lib/driver/pipeline.ml: Array Cmo_frontend Cmo_hlo Cmo_il Cmo_link Cmo_llo Cmo_naim Cmo_profile Cmo_vm Format Hashtbl List Logs Option Options Printf Sys
