lib/driver/buildsys.ml: Array Cmo_hlo Cmo_il Cmo_link Cmo_llo Cmo_naim Cmo_profile Digest Filename Format List Options Pipeline Printf Sys
