lib/driver/options.mli: Cmo_hlo Cmo_naim
