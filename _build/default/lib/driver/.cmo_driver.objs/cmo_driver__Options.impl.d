lib/driver/options.ml: Cmo_hlo Cmo_naim Printf String
