lib/driver/isolate.mli:
