lib/driver/pipeline.mli: Cmo_hlo Cmo_il Cmo_link Cmo_llo Cmo_naim Cmo_profile Cmo_vm Format Options
