(** Optimizer-bug isolation (paper section 6.3).

    The paper's two-dimensional divide and conquer, automated:
    reduce the amount of code exposed to cross-module optimization
    (which modules are in the CMO set), then pinpoint the individual
    optimizer operation (inline number, scalar rewrite count) whose
    presence flips a working build into a failing one, via binary
    search over the operation limit.

    The searches only assume monotonicity ("more optimization keeps
    the failure"), the same assumption Whalley's isolation tool [18]
    makes; when it does not hold, the result is still a valid failing
    configuration, just not a canonical one.

    Everything is expressed against a user-supplied [compile] and
    [check] so tests can inject synthetic miscompilations. *)

type 'a probe_result = Good | Bad of 'a
(** [check] verdicts: [Bad] carries evidence (e.g. the wrong
    output). *)

val isolate_modules :
  compile:(cmo_modules:string list -> 'img) ->
  check:('img -> 'evidence probe_result) ->
  modules:string list ->
  (string list * 'evidence) option
(** Find a small CMO subset that still fails.  Starts from all
    modules (returns [None] if that compiles Good); then repeatedly
    tries dropping chunks (binary-split reduction, the "pure binary
    search on the modules has limited applicability" refinement — it
    keeps sets, not single modules, since several modules may be
    needed to expose the bug).  Returns the reduced set and its
    evidence. *)

val isolate_operation_limit :
  compile:(limit:int -> 'img) ->
  check:('img -> 'evidence probe_result) ->
  max_limit:int ->
  (int * 'evidence) option
(** Smallest operation limit whose build fails, by binary search:
    limit 0 must check Good (else [None] — the bug is not in these
    operations), [max_limit] must check Bad (else [None]).  The
    returned limit identifies the guilty operation: operation number
    [limit] is the one that makes the difference. *)
