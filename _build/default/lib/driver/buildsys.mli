(** A miniature [make]-style build driver over on-disk object files.

    Demonstrates the paper's section 6.1 claim: the CMO framework
    needs no persistent program database — all persistent state except
    profiles lives in ordinary object files, so a timestamp/digest
    build tool can drive it.

    A workspace maps module names to [<name>.o] files under a
    directory.  [build] recompiles exactly the modules whose source
    digest differs from the one recorded in their object file (the
    moral equivalent of make's timestamp comparison), then performs
    the link step — which, in CMO mode, re-runs cross-module
    optimization over the IL payloads, reproducing the paper's
    trade-off that "a change in one module potentially requires
    recompilation of all modules in the CMO set" being replaced by
    re-optimization at link time. *)

type t

val create : dir:string -> t
(** The directory must exist and be writable. *)

type outcome = {
  build : Pipeline.build;
  recompiled : string list;  (** Modules whose object was rebuilt. *)
  reused : string list;  (** Modules whose object was up to date. *)
}

val build :
  ?profile:Cmo_profile.Db.t ->
  t ->
  Options.t ->
  Pipeline.source list ->
  outcome
(** Frontend (per changed module) to object files, then link.  For
    [O4], object files carry IL payloads and the CMO happens here, at
    link time, over the IL read back from disk.
    @raise Pipeline.Compile_error on any failure. *)

val object_path : t -> string -> string
val clean : t -> unit
(** Remove every object file in the workspace. *)
