type level = O1 | O2 | O4

type t = {
  level : level;
  pbo : bool;
  instrument : bool;
  selectivity : float option;
  tiered : bool;
  machine_memory : int;
  naim_level : Cmo_naim.Loader.level option;
  inline_config : Cmo_hlo.Inline.config option;
  rewrite_limit : int option;
  inline_limit : int option;
  cmo_modules : string list option;
  parallel_codegen : int;
}

let base =
  {
    level = O2;
    pbo = false;
    instrument = false;
    selectivity = None;
    tiered = false;
    machine_memory = 256 * 1024 * 1024;
    naim_level = None;
    inline_config = None;
    rewrite_limit = None;
    inline_limit = None;
    cmo_modules = None;
    parallel_codegen = 1;
  }

let o1 = { base with level = O1 }
let o2 = base
let o2_pbo = { base with pbo = true }
let o4 = { base with level = O4 }
let o4_pbo = { base with level = O4; pbo = true }

let o4_pbo_selective percent =
  { base with level = O4; pbo = true; selectivity = Some percent }

let o4_pbo_tiered percent =
  { base with level = O4; pbo = true; selectivity = Some percent; tiered = true }

let instrumented = { base with instrument = true }

let to_string t =
  let level =
    match t.level with O1 -> "+O1" | O2 -> "+O2" | O4 -> "+O4"
  in
  String.concat ""
    [
      level;
      (if t.pbo then " +P" else "");
      (if t.instrument then " +I" else "");
      (match t.selectivity with
      | Some p -> Printf.sprintf " sel=%.1f%%" p
      | None -> "");
      (if t.tiered then " tiered" else "");
    ]
