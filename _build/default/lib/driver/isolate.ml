type 'a probe_result = Good | Bad of 'a

let isolate_modules ~compile ~check ~modules =
  match check (compile ~cmo_modules:modules) with
  | Good -> None
  | Bad evidence ->
    (* Delta-debugging style reduction: try removing halves, then
       quarters, etc.; keep any removal that still fails. *)
    let rec reduce current evidence chunk =
      let n = List.length current in
      if chunk < 1 || n <= 1 then (current, evidence)
      else begin
        let rec try_removals start =
          if start >= n then None
          else begin
            let candidate =
              List.filteri
                (fun i _ -> i < start || i >= start + chunk)
                current
            in
            if candidate = [] then try_removals (start + chunk)
            else begin
              match check (compile ~cmo_modules:candidate) with
              | Bad e -> Some (candidate, e)
              | Good -> try_removals (start + chunk)
            end
          end
        in
        match try_removals 0 with
        | Some (smaller, e) -> reduce smaller e chunk
        | None -> reduce current evidence (chunk / 2)
      end
    in
    let n = List.length modules in
    Some (reduce modules evidence (max 1 (n / 2)))

let isolate_operation_limit ~compile ~check ~max_limit =
  match check (compile ~limit:0) with
  | Bad _ -> None  (* fails even with no operations: not these ops *)
  | Good -> (
    match check (compile ~limit:max_limit) with
    | Good -> None  (* never fails *)
    | Bad top_evidence ->
      (* Invariant: lo Good, hi Bad. *)
      let rec search lo hi evidence =
        if hi - lo <= 1 then (hi, evidence)
        else begin
          let mid = lo + ((hi - lo) / 2) in
          match check (compile ~limit:mid) with
          | Good -> search mid hi evidence
          | Bad e -> search lo mid e
        end
      in
      Some (search 0 max_limit top_evidence))
