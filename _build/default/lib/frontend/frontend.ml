type error = {
  module_name : string;
  message : string;
  line : int;
  col : int;
}

let of_pos module_name message (pos : Ast.pos) =
  { module_name; message; line = pos.Ast.line; col = pos.Ast.col }

let compile ~module_name source =
  match Parser.parse ~module_name source with
  | exception Lexer.Lex_error (msg, pos) ->
    Error [ of_pos module_name msg pos ]
  | exception Parser.Parse_error (msg, pos) ->
    Error [ of_pos module_name msg pos ]
  | ast -> (
    match Sema.analyze ast with
    | Error errs ->
      Error
        (List.map
           (fun (e : Sema.error) -> of_pos module_name e.Sema.msg e.Sema.pos)
           errs)
    | Ok resolved -> Ok (Lower.lower_unit resolved))

let pp_error ppf { module_name; message; line; col } =
  Format.fprintf ppf "%s:%d:%d: %s" module_name line col message

let compile_exn ~module_name source =
  match compile ~module_name source with
  | Ok m -> m
  | Error errs ->
    failwith
      (Format.asprintf "@[<v>%a@]"
         (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_error)
         errs)
