lib/frontend/lower.mli: Ast Cmo_il
