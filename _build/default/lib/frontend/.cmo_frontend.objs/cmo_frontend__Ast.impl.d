lib/frontend/ast.ml:
