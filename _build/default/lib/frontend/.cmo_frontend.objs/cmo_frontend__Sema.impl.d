lib/frontend/sema.ml: Ast Cmo_il Format Hashtbl List Option
