lib/frontend/sema.mli: Ast Format
