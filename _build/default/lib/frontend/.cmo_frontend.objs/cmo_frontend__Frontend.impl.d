lib/frontend/frontend.ml: Ast Format Lexer List Lower Parser Sema
