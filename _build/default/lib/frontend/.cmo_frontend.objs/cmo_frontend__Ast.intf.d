lib/frontend/ast.mli:
