lib/frontend/frontend.mli: Cmo_il Format
