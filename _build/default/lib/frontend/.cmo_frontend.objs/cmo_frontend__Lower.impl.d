lib/frontend/lower.ml: Ast Cmo_il Hashtbl List Option Printf
