lib/frontend/parser.ml: Array Ast Format Int64 Lexer List
