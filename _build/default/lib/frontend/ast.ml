type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Not

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int64
  | Var of string
  | Global of string
  | Index of string * expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Break
  | Continue
  | Return of expr option
  | Expr of expr

type decl =
  | Global_decl of {
      name : string;
      size : int;
      init : int64 array;
      static : bool;
      extern_ : bool;
      pos : pos;
    }
  | Func_decl of {
      name : string;
      params : string list;
      body : stmt list;
      static : bool;
      pos : pos;
      end_line : int;
    }

type unit_ = { module_name : string; decls : decl list }
