(** Semantic analysis for MiniC.

    Resolves bare identifiers against the module's scopes (locals
    shadow globals), reclassifying {!Ast.Var} nodes that refer to
    module globals as {!Ast.Global}, and reports semantic errors:

    - duplicate global/function/parameter/local declarations;
    - use of an undeclared variable;
    - assignment or address-taking on the wrong kind of name
      (storing through a function, indexing a local, calling a
      variable);
    - wrong arity on calls to module-level functions and intrinsics
      (calls to names defined in *other* modules are assumed extern
      and are checked at CMO/link time by {!Cmo_il.Verify}, like a
      pre-ANSI C compiler trusting an unprototyped call). *)

type error = { pos : Ast.pos; msg : string }

val analyze : Ast.unit_ -> (Ast.unit_, error list) result
(** Returns the resolved unit, or all errors found (never an empty
    error list). *)

val pp_error : Format.formatter -> error -> unit
