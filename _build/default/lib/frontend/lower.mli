(** Lowering from resolved MiniC AST to IL.

    - Locals and parameters become virtual registers.
    - Scalar globals become size-1 global arrays accessed with
      [Load]/[Store] at index 0.
    - [&&]/[||] lower to short-circuit control flow producing 0/1.
    - [static] names are mangled to ["module::name"] so that every
      symbol in a linked program has a unique name while keeping
      [Local] linkage (which interprocedural analysis exploits);
      this mirrors the qualified names HLO uses for module-private
      routines.
    - Each call receives a fresh, deterministic call-site id; site
      ids increase in source order, making profile correlation stable
      for unchanged source.
    - [Func.src_lines] is set from the source span of the function,
      feeding the memory-per-line accounting. *)

val lower_unit : Ast.unit_ -> Cmo_il.Ilmod.t
(** Requires a unit that passed {!Sema.analyze}. *)
