(** Recursive-descent parser for MiniC.

    Bare identifiers parse as {!Ast.Var}; semantic analysis
    ({!Sema.analyze}) later reclassifies them as global references
    once scopes are known. *)

exception Parse_error of string * Ast.pos

val parse : module_name:string -> string -> Ast.unit_
(** [parse ~module_name source] parses a whole compilation unit.
    @raise Parse_error on syntax errors,
    @raise Lexer.Lex_error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
