type token =
  | INT of int64
  | IDENT of string
  | KW_FUNC | KW_GLOBAL | KW_STATIC | KW_EXTERN | KW_VAR | KW_IF | KW_ELSE
  | KW_WHILE | KW_FOR | KW_BREAK | KW_CONTINUE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | EOF

type located = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keyword_table =
  [
    ("func", KW_FUNC);
    ("global", KW_GLOBAL);
    ("static", KW_STATIC);
    ("extern", KW_EXTERN);
    ("var", KW_VAR);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("for", KW_FOR);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("return", KW_RETURN);
  ]

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let here c : Ast.pos = { Ast.line = c.line; col = c.pos - c.bol + 1 }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c =
  (match peek c with
  | Some '\n' ->
    c.line <- c.line + 1;
    c.bol <- c.pos + 1
  | _ -> ());
  c.pos <- c.pos + 1

let is_digit ch = ch >= '0' && ch <= '9'

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident_char ch = is_ident_start ch || is_digit ch || ch = ':'

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_ws c
  | Some '/' when c.pos + 1 < String.length c.src && c.src.[c.pos + 1] = '/' ->
    let rec to_eol () =
      match peek c with
      | Some '\n' | None -> ()
      | Some _ ->
        advance c;
        to_eol ()
    in
    to_eol ();
    skip_ws c
  | _ -> ()

let lex_number c pos =
  let start = c.pos in
  let neg = peek c = Some '-' in
  if neg then advance c;
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match Int64.of_string_opt text with
  | Some v -> { tok = INT v; pos }
  | None -> raise (Lex_error (Printf.sprintf "malformed number %S" text, pos))

let lex_ident c pos =
  let start = c.pos in
  while (match peek c with Some ch -> is_ident_char ch | None -> false) do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match List.assoc_opt text keyword_table with
  | Some kw -> { tok = kw; pos }
  | None -> { tok = IDENT text; pos }

let two c pos first second tok_two tok_one =
  advance c;
  if peek c = Some second then begin
    advance c;
    { tok = tok_two; pos }
  end
  else
    match tok_one with
    | Some t -> { tok = t; pos }
    | None ->
      raise
        (Lex_error (Printf.sprintf "expected %c after %c" second first, pos))

let next_token c =
  skip_ws c;
  let pos = here c in
  match peek c with
  | None -> { tok = EOF; pos }
  | Some ch ->
    if is_digit ch then lex_number c pos
    else if is_ident_start ch then lex_ident c pos
    else begin
      match ch with
      | '(' -> advance c; { tok = LPAREN; pos }
      | ')' -> advance c; { tok = RPAREN; pos }
      | '{' -> advance c; { tok = LBRACE; pos }
      | '}' -> advance c; { tok = RBRACE; pos }
      | '[' -> advance c; { tok = LBRACKET; pos }
      | ']' -> advance c; { tok = RBRACKET; pos }
      | ',' -> advance c; { tok = COMMA; pos }
      | ';' -> advance c; { tok = SEMI; pos }
      | '+' -> advance c; { tok = PLUS; pos }
      | '-' -> advance c; { tok = MINUS; pos }
      | '*' -> advance c; { tok = STAR; pos }
      | '/' -> advance c; { tok = SLASH; pos }
      | '%' -> advance c; { tok = PERCENT; pos }
      | '^' -> advance c; { tok = CARET; pos }
      | '&' -> two c pos '&' '&' AMPAMP (Some AMP)
      | '|' -> two c pos '|' '|' PIPEPIPE (Some PIPE)
      | '=' -> two c pos '=' '=' EQ (Some ASSIGN)
      | '!' -> two c pos '!' '=' NE (Some BANG)
      | '<' ->
        advance c;
        (match peek c with
        | Some '=' -> advance c; { tok = LE; pos }
        | Some '<' -> advance c; { tok = SHL; pos }
        | _ -> { tok = LT; pos })
      | '>' ->
        advance c;
        (match peek c with
        | Some '=' -> advance c; { tok = GE; pos }
        | Some '>' -> advance c; { tok = SHR; pos }
        | _ -> { tok = GT; pos })
      | _ ->
        raise (Lex_error (Printf.sprintf "illegal character %C" ch, pos))
    end

let tokenize src =
  let c = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let t = next_token c in
    if t.tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []

let token_name = function
  | INT v -> Printf.sprintf "integer %Ld" v
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KW_FUNC -> "'func'" | KW_GLOBAL -> "'global'" | KW_STATIC -> "'static'"
  | KW_EXTERN -> "'extern'"
  | KW_VAR -> "'var'" | KW_IF -> "'if'" | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'" | KW_FOR -> "'for'" | KW_RETURN -> "'return'"
  | KW_BREAK -> "'break'" | KW_CONTINUE -> "'continue'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | COMMA -> "','" | SEMI -> "';'" | ASSIGN -> "'='"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'" | SHL -> "'<<'" | SHR -> "'>>'"
  | EQ -> "'=='" | NE -> "'!='" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'"
  | GE -> "'>='"
  | AMPAMP -> "'&&'" | PIPEPIPE -> "'||'" | BANG -> "'!'"
  | EOF -> "end of input"
