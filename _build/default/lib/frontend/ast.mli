(** Abstract syntax of MiniC, the source language of the frontend.

    MiniC is a single-type (64-bit integer) C-like language with
    modules, exported and [static] (module-private) functions and
    globals, scalar and array globals, and the intrinsics [print] and
    [arg].  It is deliberately small: the paper's machinery is
    entirely IL-level, so the language only needs to produce realistic
    IL shapes (calls, loops, global accesses, cross-module
    references). *)

type pos = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** Short-circuit logical forms. *)

type unop = Neg | Not

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int64
  | Var of string  (** Local variable or parameter. *)
  | Global of string  (** Scalar global read (resolved by sema). *)
  | Index of string * expr  (** Array global read. *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of string * expr  (** [var x = e;] *)
  | Assign of string * expr  (** Local or scalar global. *)
  | Store of string * expr * expr  (** [g\[e1\] = e2;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
      (** [for (init; cond; step) { body }]; a missing condition means
          an infinite loop.  The init's scope is the loop. *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr  (** Expression statement (for call effects). *)

type decl =
  | Global_decl of {
      name : string;
      size : int;  (** 1 for scalars. *)
      init : int64 array;
      static : bool;
      extern_ : bool;
          (** Declared here, defined by another module; no storage is
              emitted. *)
      pos : pos;
    }
  | Func_decl of {
      name : string;
      params : string list;
      body : stmt list;
      static : bool;
      pos : pos;
      end_line : int;
    }

type unit_ = { module_name : string; decls : decl list }
