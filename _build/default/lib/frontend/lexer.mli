(** Hand-written lexer for MiniC. *)

type token =
  | INT of int64
  | IDENT of string
  | KW_FUNC | KW_GLOBAL | KW_STATIC | KW_EXTERN | KW_VAR | KW_IF | KW_ELSE
  | KW_WHILE | KW_FOR | KW_BREAK | KW_CONTINUE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | EOF

type located = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

val tokenize : string -> located list
(** Tokenize a whole compilation unit.  Comments are [//] to end of
    line.  @raise Lex_error on an illegal character or malformed
    number. *)

val token_name : token -> string
(** Human-readable token description for parse errors. *)
