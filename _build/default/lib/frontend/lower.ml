module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Intrinsics = Cmo_il.Intrinsics

let mangle module_name name = module_name ^ "::" ^ name

type ctx = {
  func : Func.t;
  resolve : string -> string;  (* static-name mangling *)
  mutable frames : (string, Instr.reg) Hashtbl.t list;
  mutable cur : Func.block option;
  mutable cur_instrs : Instr.instr list;  (* reversed *)
  mutable loops : (Instr.label * Instr.label) list;
      (* innermost first: (continue target, break target) *)
}

let fresh_block ctx =
  (* Terminator is patched when the block is finished. *)
  Func.add_block ctx.func [] (Instr.Ret None)

let start ctx block =
  ctx.cur <- Some block;
  ctx.cur_instrs <- []

let emit ctx instr = ctx.cur_instrs <- instr :: ctx.cur_instrs

let finish ctx term =
  match ctx.cur with
  | None -> ()  (* unreachable code after a return: drop it *)
  | Some b ->
    b.Func.instrs <- List.rev ctx.cur_instrs;
    b.Func.term <- term;
    ctx.cur <- None;
    ctx.cur_instrs <- []

let in_block ctx = ctx.cur <> None

let lookup_var ctx name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
      match Hashtbl.find_opt frame name with
      | Some r -> Some r
      | None -> go rest)
  in
  go ctx.frames

let define_var ctx name =
  let r = Func.new_reg ctx.func in
  (match ctx.frames with
  | frame :: _ -> Hashtbl.replace frame name r
  | [] -> assert false);
  r

let scalar_addr ctx name = { Instr.base = ctx.resolve name; index = Instr.Imm 0L }

let il_binop : Ast.binop -> Instr.binop = function
  | Ast.Add -> Instr.Add | Ast.Sub -> Instr.Sub | Ast.Mul -> Instr.Mul
  | Ast.Div -> Instr.Div | Ast.Rem -> Instr.Rem
  | Ast.And -> Instr.And | Ast.Or -> Instr.Or | Ast.Xor -> Instr.Xor
  | Ast.Shl -> Instr.Shl | Ast.Shr -> Instr.Shr
  | Ast.Eq -> Instr.Eq | Ast.Ne -> Instr.Ne | Ast.Lt -> Instr.Lt
  | Ast.Le -> Instr.Le | Ast.Gt -> Instr.Gt | Ast.Ge -> Instr.Ge
  | Ast.Land | Ast.Lor -> assert false  (* handled by control flow *)

let rec lower_expr ctx (e : Ast.expr) : Instr.operand =
  match e.Ast.desc with
  | Ast.Int v -> Instr.Imm v
  | Ast.Var name -> (
    match lookup_var ctx name with
    | Some r -> Instr.Reg r
    | None ->
      (* Sema guarantees this cannot happen. *)
      invalid_arg (Printf.sprintf "Lower: unresolved variable %s" name))
  | Ast.Global name ->
    let d = Func.new_reg ctx.func in
    emit ctx (Instr.Load (d, scalar_addr ctx name));
    Instr.Reg d
  | Ast.Index (base, idx) ->
    let index = lower_expr ctx idx in
    let d = Func.new_reg ctx.func in
    emit ctx (Instr.Load (d, { Instr.base = ctx.resolve base; index }));
    Instr.Reg d
  | Ast.Unary (op, a) ->
    let a = lower_expr ctx a in
    let d = Func.new_reg ctx.func in
    let il_op = match op with Ast.Neg -> Instr.Neg | Ast.Not -> Instr.Not in
    emit ctx (Instr.Unop (il_op, d, a));
    Instr.Reg d
  | Ast.Binary (Ast.Land, a, b) -> lower_short_circuit ctx ~is_and:true a b
  | Ast.Binary (Ast.Lor, a, b) -> lower_short_circuit ctx ~is_and:false a b
  | Ast.Binary (op, a, b) ->
    let a = lower_expr ctx a in
    let b = lower_expr ctx b in
    let d = Func.new_reg ctx.func in
    emit ctx (Instr.Binop (il_binop op, d, a, b));
    Instr.Reg d
  | Ast.Call (callee, args) -> Instr.Reg (lower_call ctx ~want_result:true callee args)

and lower_call ctx ~want_result callee args =
  let argv = List.map (lower_expr ctx) args in
  let resolved =
    if Intrinsics.is_intrinsic callee then callee else ctx.resolve callee
  in
  let dst = if want_result then Some (Func.new_reg ctx.func) else None in
  let site = Func.new_site ctx.func in
  emit ctx
    (Instr.Call { Instr.dst; callee = resolved; args = argv; site; call_count = 0.0 });
  match dst with Some d -> d | None -> 0

and lower_short_circuit ctx ~is_and a b =
  (* r = a && b  ==>
       r = 0 (resp. 1); if a (resp. !a) then r = (b != 0) *)
  let result = Func.new_reg ctx.func in
  let a_val = lower_expr ctx a in
  emit ctx (Instr.Move (result, Instr.Imm (if is_and then 0L else 1L)));
  let b_block = fresh_block ctx in
  let join = fresh_block ctx in
  let ifso, ifnot =
    if is_and then (b_block.Func.label, join.Func.label)
    else (join.Func.label, b_block.Func.label)
  in
  finish ctx (Instr.Br { cond = a_val; ifso; ifnot });
  start ctx b_block;
  let b_val = lower_expr ctx b in
  emit ctx (Instr.Binop (Instr.Ne, result, b_val, Instr.Imm 0L));
  finish ctx (Instr.Jmp join.Func.label);
  start ctx join;
  Instr.Reg result

let rec lower_stmt ctx (s : Ast.stmt) =
  if in_block ctx then
    match s.Ast.sdesc with
    | Ast.Decl (name, e) ->
      let v = lower_expr ctx e in
      let r = define_var ctx name in
      emit ctx (Instr.Move (r, v))
    | Ast.Assign (name, e) -> (
      let v = lower_expr ctx e in
      match lookup_var ctx name with
      | Some r -> emit ctx (Instr.Move (r, v))
      | None -> emit ctx (Instr.Store (scalar_addr ctx name, v)))
    | Ast.Store (base, idx, e) ->
      let index = lower_expr ctx idx in
      let v = lower_expr ctx e in
      emit ctx (Instr.Store ({ Instr.base = ctx.resolve base; index }, v))
    | Ast.If (cond, then_body, else_body) ->
      let c = lower_expr ctx cond in
      let then_block = fresh_block ctx in
      if else_body = [] then begin
        let join = fresh_block ctx in
        finish ctx
          (Instr.Br
             { cond = c; ifso = then_block.Func.label; ifnot = join.Func.label });
        start ctx then_block;
        lower_body ctx then_body;
        finish ctx (Instr.Jmp join.Func.label);
        start ctx join
      end
      else begin
        let else_block = fresh_block ctx in
        let join = fresh_block ctx in
        finish ctx
          (Instr.Br
             {
               cond = c;
               ifso = then_block.Func.label;
               ifnot = else_block.Func.label;
             });
        start ctx then_block;
        lower_body ctx then_body;
        finish ctx (Instr.Jmp join.Func.label);
        start ctx else_block;
        lower_body ctx else_body;
        finish ctx (Instr.Jmp join.Func.label);
        start ctx join
      end
    | Ast.While (cond, body) ->
      let header = fresh_block ctx in
      let body_block = fresh_block ctx in
      let exit_block = fresh_block ctx in
      finish ctx (Instr.Jmp header.Func.label);
      start ctx header;
      let c = lower_expr ctx cond in
      finish ctx
        (Instr.Br
           {
             cond = c;
             ifso = body_block.Func.label;
             ifnot = exit_block.Func.label;
           });
      start ctx body_block;
      ctx.loops <- (header.Func.label, exit_block.Func.label) :: ctx.loops;
      lower_body ctx body;
      ctx.loops <- List.tl ctx.loops;
      finish ctx (Instr.Jmp header.Func.label);
      start ctx exit_block
    | Ast.For (init, cond, step, body) ->
      (* continue jumps to the step block, then back to the header. *)
      ctx.frames <- Hashtbl.create 4 :: ctx.frames;
      Option.iter (lower_stmt ctx) init;
      let header = fresh_block ctx in
      let body_block = fresh_block ctx in
      let step_block = fresh_block ctx in
      let exit_block = fresh_block ctx in
      finish ctx (Instr.Jmp header.Func.label);
      start ctx header;
      (match cond with
      | Some cond ->
        let c = lower_expr ctx cond in
        finish ctx
          (Instr.Br
             {
               cond = c;
               ifso = body_block.Func.label;
               ifnot = exit_block.Func.label;
             })
      | None -> finish ctx (Instr.Jmp body_block.Func.label));
      start ctx body_block;
      ctx.loops <- (step_block.Func.label, exit_block.Func.label) :: ctx.loops;
      lower_body ctx body;
      ctx.loops <- List.tl ctx.loops;
      finish ctx (Instr.Jmp step_block.Func.label);
      start ctx step_block;
      Option.iter (lower_stmt ctx) step;
      finish ctx (Instr.Jmp header.Func.label);
      start ctx exit_block;
      ctx.frames <- List.tl ctx.frames
    | Ast.Break -> (
      match ctx.loops with
      | (_, break_target) :: _ -> finish ctx (Instr.Jmp break_target)
      | [] -> invalid_arg "Lower: break outside a loop")
    | Ast.Continue -> (
      match ctx.loops with
      | (continue_target, _) :: _ -> finish ctx (Instr.Jmp continue_target)
      | [] -> invalid_arg "Lower: continue outside a loop")
    | Ast.Return None -> finish ctx (Instr.Ret (Some (Instr.Imm 0L)))
    | Ast.Return (Some e) ->
      let v = lower_expr ctx e in
      finish ctx (Instr.Ret (Some v))
    | Ast.Expr ({ Ast.desc = Ast.Call (callee, args); _ }) ->
      ignore (lower_call ctx ~want_result:false callee args)
    | Ast.Expr e -> ignore (lower_expr ctx e)

and lower_body ctx body =
  ctx.frames <- Hashtbl.create 8 :: ctx.frames;
  List.iter (lower_stmt ctx) body;
  ctx.frames <- List.tl ctx.frames

let lower_func ~module_name ~resolve (f : Ast.decl) =
  match f with
  | Ast.Global_decl _ -> assert false
  | Ast.Func_decl { name; params; body; static; pos; end_line } ->
    let linkage = if static then Func.Local else Func.Exported in
    let fname = if static then mangle module_name name else name in
    let func = Func.create ~name:fname ~arity:(List.length params) ~linkage in
    func.Func.src_lines <- max 1 (end_line - pos.Ast.line + 1);
    let frame = Hashtbl.create 8 in
    List.iteri (fun i p -> Hashtbl.replace frame p i) params;
    let ctx =
      { func; resolve; frames = [ frame ]; cur = None; cur_instrs = [];
        loops = [] }
    in
    let entry = fresh_block ctx in
    func.Func.entry <- entry.Func.label;
    start ctx entry;
    List.iter (lower_stmt ctx) body;
    (* Implicit return 0 when control falls off the end. *)
    finish ctx (Instr.Ret (Some (Instr.Imm 0L)));
    func

let lower_unit (unit_ : Ast.unit_) =
  let module_name = unit_.Ast.module_name in
  let statics = Hashtbl.create 16 in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Global_decl { name; static = true; _ }
      | Ast.Func_decl { name; static = true; _ } ->
        Hashtbl.replace statics name ()
      | Ast.Global_decl _ | Ast.Func_decl _ -> ())
    unit_.Ast.decls;
  let resolve name =
    if Hashtbl.mem statics name then mangle module_name name else name
  in
  let m = Ilmod.create module_name in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Global_decl { extern_ = true; _ } ->
        (* Declaration only; storage lives in the defining module. *)
        ()
      | Ast.Global_decl { name; size; init; static; _ } ->
        ignore
          (Ilmod.add_global m ~name:(resolve name) ~size ~init
             ~exported:(not static) ())
      | Ast.Func_decl _ ->
        Ilmod.add_func m (lower_func ~module_name ~resolve decl))
    unit_.Ast.decls;
  m
