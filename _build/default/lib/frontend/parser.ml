exception Parse_error of string * Ast.pos

type state = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.tok = Lexer.EOF; pos = { Ast.line = 0; col = 0 } }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let error pos fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (msg, pos))) fmt

let expect st tok =
  let t = peek st in
  if t.Lexer.tok = tok then advance st
  else
    error t.Lexer.pos "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name t.Lexer.tok)

let expect_ident st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.IDENT name ->
    advance st;
    (name, t.Lexer.pos)
  | other -> error t.Lexer.pos "expected identifier, found %s" (Lexer.token_name other)

let expect_int st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.INT v ->
    advance st;
    v
  | other -> error t.Lexer.pos "expected integer, found %s" (Lexer.token_name other)

(* Binary operator precedence, loosest first. *)
let binop_of_token = function
  | Lexer.PIPEPIPE -> Some (Ast.Lor, 1)
  | Lexer.AMPAMP -> Some (Ast.Land, 2)
  | Lexer.PIPE -> Some (Ast.Or, 3)
  | Lexer.CARET -> Some (Ast.Xor, 4)
  | Lexer.AMP -> Some (Ast.And, 5)
  | Lexer.EQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_primary st : Ast.expr =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.INT v ->
    advance st;
    { Ast.desc = Ast.Int v; pos = t.Lexer.pos }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr_prec st 1 in
    expect st Lexer.RPAREN;
    e
  | Lexer.MINUS ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Unary (Ast.Neg, e); pos = t.Lexer.pos }
  | Lexer.BANG ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Unary (Ast.Not, e); pos = t.Lexer.pos }
  | Lexer.IDENT name -> begin
    advance st;
    match (peek st).Lexer.tok with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      { Ast.desc = Ast.Call (name, args); pos = t.Lexer.pos }
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr_prec st 1 in
      expect st Lexer.RBRACKET;
      { Ast.desc = Ast.Index (name, idx); pos = t.Lexer.pos }
    | _ -> { Ast.desc = Ast.Var name; pos = t.Lexer.pos }
  end
  | other -> error t.Lexer.pos "expected expression, found %s" (Lexer.token_name other)

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.MINUS ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Unary (Ast.Neg, e); pos = t.Lexer.pos }
  | Lexer.BANG ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Unary (Ast.Not, e); pos = t.Lexer.pos }
  | _ -> parse_primary st

and parse_args st =
  if (peek st).Lexer.tok = Lexer.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr_prec st 1 in
      match (peek st).Lexer.tok with
      | Lexer.COMMA ->
        advance st;
        go (e :: acc)
      | _ ->
        expect st Lexer.RPAREN;
        List.rev (e :: acc)
    in
    go []
  end

and parse_expr_prec st min_prec : Ast.expr =
  let lhs = parse_unary st in
  let rec loop lhs =
    let t = peek st in
    match binop_of_token t.Lexer.tok with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_expr_prec st (prec + 1) in
      loop { Ast.desc = Ast.Binary (op, lhs, rhs); pos = t.Lexer.pos }
    | _ -> lhs
  in
  loop lhs

let parse_expression st = parse_expr_prec st 1

let rec parse_stmt st : Ast.stmt =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_VAR -> parse_simple_stmt st ~consume_semi:true
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expression st in
    expect st Lexer.RPAREN;
    let then_body = parse_block st in
    let else_body =
      if (peek st).Lexer.tok = Lexer.KW_ELSE then begin
        advance st;
        if (peek st).Lexer.tok = Lexer.KW_IF then [ parse_stmt st ]
        else parse_block st
      end
      else []
    in
    { Ast.sdesc = Ast.If (cond, then_body, else_body); spos = t.Lexer.pos }
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expression st in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    { Ast.sdesc = Ast.While (cond, body); spos = t.Lexer.pos }
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init =
      if (peek st).Lexer.tok = Lexer.SEMI then begin
        advance st;
        None
      end
      else Some (parse_simple_stmt st ~consume_semi:true)
    in
    let cond =
      if (peek st).Lexer.tok = Lexer.SEMI then None
      else Some (parse_expression st)
    in
    expect st Lexer.SEMI;
    let step =
      if (peek st).Lexer.tok = Lexer.RPAREN then None
      else Some (parse_simple_stmt st ~consume_semi:false)
    in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    { Ast.sdesc = Ast.For (init, cond, step, body); spos = t.Lexer.pos }
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI;
    { Ast.sdesc = Ast.Break; spos = t.Lexer.pos }
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    { Ast.sdesc = Ast.Continue; spos = t.Lexer.pos }
  | Lexer.KW_RETURN ->
    advance st;
    if (peek st).Lexer.tok = Lexer.SEMI then begin
      advance st;
      { Ast.sdesc = Ast.Return None; spos = t.Lexer.pos }
    end
    else begin
      let e = parse_expression st in
      expect st Lexer.SEMI;
      { Ast.sdesc = Ast.Return (Some e); spos = t.Lexer.pos }
    end
  | _ -> parse_simple_stmt st ~consume_semi:true

(* The statement forms legal in a [for] header: declaration,
   assignment, array store, or expression statement. *)
and parse_simple_stmt st ~consume_semi : Ast.stmt =
  let t = peek st in
  let finish sdesc =
    if consume_semi then expect st Lexer.SEMI;
    { Ast.sdesc; spos = t.Lexer.pos }
  in
  match t.Lexer.tok with
  | Lexer.KW_VAR ->
    advance st;
    let name, _ = expect_ident st in
    expect st Lexer.ASSIGN;
    let e = parse_expression st in
    finish (Ast.Decl (name, e))
  | Lexer.IDENT name -> begin
    (* Could be assignment, array store, or expression statement. *)
    match st.toks with
    | _ :: { Lexer.tok = Lexer.ASSIGN; _ } :: _ ->
      advance st;
      advance st;
      let e = parse_expression st in
      finish (Ast.Assign (name, e))
    | _ :: { Lexer.tok = Lexer.LBRACKET; _ } :: _ ->
      (* Either a store or an index expression; decide after ']'. *)
      advance st;
      advance st;
      let idx = parse_expression st in
      expect st Lexer.RBRACKET;
      if (peek st).Lexer.tok = Lexer.ASSIGN then begin
        advance st;
        let v = parse_expression st in
        finish (Ast.Store (name, idx, v))
      end
      else begin
        (* Re-wrap as an index expression and continue as expression
           statement (e.g. [a[i] ;] or [a[i] + f();]). *)
        let base = { Ast.desc = Ast.Index (name, idx); pos = t.Lexer.pos } in
        let e = parse_expr_continue st base in
        finish (Ast.Expr e)
      end
    | _ -> finish (Ast.Expr (parse_expression st))
  end
  | _ -> finish (Ast.Expr (parse_expression st))

and parse_expr_continue st lhs =
  let rec loop lhs =
    let t = peek st in
    match binop_of_token t.Lexer.tok with
    | Some (op, prec) ->
      advance st;
      let rhs = parse_expr_prec st (prec + 1) in
      loop { Ast.desc = Ast.Binary (op, lhs, rhs); pos = t.Lexer.pos }
    | None -> lhs
  in
  loop lhs

and parse_block st =
  expect st Lexer.LBRACE;
  let rec go acc =
    if (peek st).Lexer.tok = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

let parse_global_init st =
  if (peek st).Lexer.tok = Lexer.ASSIGN then begin
    advance st;
    match (peek st).Lexer.tok with
    | Lexer.LBRACE ->
      advance st;
      let rec go acc =
        let v = expect_int st in
        match (peek st).Lexer.tok with
        | Lexer.COMMA ->
          advance st;
          go (v :: acc)
        | _ ->
          expect st Lexer.RBRACE;
          List.rev (v :: acc)
      in
      Array.of_list (go [])
    | Lexer.MINUS ->
      advance st;
      [| Int64.neg (expect_int st) |]
    | _ -> [| expect_int st |]
  end
  else [||]

let parse_decl ?(extern_ = false) st static : Ast.decl =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_GLOBAL ->
    advance st;
    let name, pos = expect_ident st in
    let size =
      if (peek st).Lexer.tok = Lexer.LBRACKET then begin
        advance st;
        let v = expect_int st in
        expect st Lexer.RBRACKET;
        Int64.to_int v
      end
      else 1
    in
    let init = parse_global_init st in
    expect st Lexer.SEMI;
    if size < 1 then error pos "global %s has non-positive size %d" name size;
    if Array.length init > size then
      error pos "global %s initializer longer than its size" name;
    if extern_ && Array.length init > 0 then
      error pos "extern global %s cannot have an initializer" name;
    Ast.Global_decl { name; size; init; static; extern_; pos }
  | Lexer.KW_FUNC ->
    advance st;
    let name, pos = expect_ident st in
    expect st Lexer.LPAREN;
    let params =
      if (peek st).Lexer.tok = Lexer.RPAREN then begin
        advance st;
        []
      end
      else begin
        let rec go acc =
          let p, _ = expect_ident st in
          match (peek st).Lexer.tok with
          | Lexer.COMMA ->
            advance st;
            go (p :: acc)
          | _ ->
            expect st Lexer.RPAREN;
            List.rev (p :: acc)
        in
        go []
      end
    in
    let end_before = (peek st).Lexer.pos.Ast.line in
    let body = parse_block st in
    let end_line = max end_before (peek st).Lexer.pos.Ast.line in
    if extern_ then error pos "extern functions are not declared in MiniC";
    Ast.Func_decl { name; params; body; static; pos; end_line }
  | other ->
    error t.Lexer.pos "expected 'global' or 'func', found %s"
      (Lexer.token_name other)

let parse ~module_name source =
  let st = { toks = Lexer.tokenize source } in
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.EOF -> List.rev acc
    | Lexer.KW_STATIC ->
      advance st;
      go (parse_decl st true :: acc)
    | Lexer.KW_EXTERN ->
      advance st;
      go (parse_decl ~extern_:true st false :: acc)
    | _ -> go (parse_decl st false :: acc)
  in
  { Ast.module_name; decls = go [] }

let parse_expr source =
  let st = { toks = Lexer.tokenize source } in
  parse_expression st
