(** One-call frontend: source text to IL module.

    This is the component labelled "frontends" in the paper's Figure 2
    pipeline; in CMO mode the driver stores its output IL in object
    files instead of passing it on to code generation. *)

type error = {
  module_name : string;
  message : string;
  line : int;
  col : int;
}

val compile : module_name:string -> string -> (Cmo_il.Ilmod.t, error list) result
(** Lex, parse, analyze and lower one compilation unit.  On success
    the result verifies cleanly as a standalone module (see
    {!Cmo_il.Verify.check_module}). *)

val compile_exn : module_name:string -> string -> Cmo_il.Ilmod.t
(** @raise Failure with a formatted message on any error. *)

val pp_error : Format.formatter -> error -> unit
