type error = { pos : Ast.pos; msg : string }

type scope = {
  globals : (string, int) Hashtbl.t;  (* name -> size *)
  funcs : (string, int) Hashtbl.t;  (* name -> arity *)
  mutable errors : error list;
  mutable loop_depth : int;  (* break/continue legality *)
}

let err scope pos fmt =
  Format.kasprintf (fun msg -> scope.errors <- { pos; msg } :: scope.errors) fmt

let build_scope (unit_ : Ast.unit_) =
  let scope =
    { globals = Hashtbl.create 32; funcs = Hashtbl.create 32; errors = [];
      loop_depth = 0 }
  in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Global_decl { name; size; pos; _ } ->
        if Hashtbl.mem scope.globals name || Hashtbl.mem scope.funcs name then
          err scope pos "duplicate declaration of %s" name
        else Hashtbl.replace scope.globals name size
      | Ast.Func_decl { name; params; pos; _ } ->
        if Hashtbl.mem scope.globals name || Hashtbl.mem scope.funcs name then
          err scope pos "duplicate declaration of %s" name
        else if Cmo_il.Intrinsics.is_intrinsic name then
          err scope pos "function %s shadows an intrinsic" name
        else Hashtbl.replace scope.funcs name (List.length params))
    unit_.Ast.decls;
  scope

(* Locals are block-scoped with shadowing; a simple association list
   of frames suffices. *)
type locals = (string, unit) Hashtbl.t list

let local_defined (frames : locals) name =
  List.exists (fun f -> Hashtbl.mem f name) frames

let rec resolve_expr scope (frames : locals) (e : Ast.expr) : Ast.expr =
  let desc =
    match e.Ast.desc with
    | Ast.Int _ as d -> d
    | Ast.Var name ->
      if local_defined frames name then Ast.Var name
      else if Hashtbl.mem scope.globals name then begin
        if Hashtbl.find scope.globals name <> 1 then
          err scope e.Ast.pos "array global %s used as a scalar" name;
        Ast.Global name
      end
      else begin
        err scope e.Ast.pos "undeclared variable %s" name;
        Ast.Var name
      end
    | Ast.Global _ as d -> d
    | Ast.Index (base, idx) ->
      if local_defined frames base then
        err scope e.Ast.pos "cannot index local variable %s" base
      else if not (Hashtbl.mem scope.globals base) then
        err scope e.Ast.pos "undeclared global %s" base;
      Ast.Index (base, resolve_expr scope frames idx)
    | Ast.Unary (op, a) -> Ast.Unary (op, resolve_expr scope frames a)
    | Ast.Binary (op, a, b) ->
      Ast.Binary (op, resolve_expr scope frames a, resolve_expr scope frames b)
    | Ast.Call (callee, args) ->
      (if local_defined frames callee || Hashtbl.mem scope.globals callee then
         err scope e.Ast.pos "%s is not a function" callee
       else
         match Cmo_il.Intrinsics.arity callee with
         | Some a ->
           if List.length args <> a then
             err scope e.Ast.pos "intrinsic %s expects %d argument(s), got %d"
               callee a (List.length args)
         | None -> (
           match Hashtbl.find_opt scope.funcs callee with
           | Some arity ->
             if List.length args <> arity then
               err scope e.Ast.pos "%s expects %d argument(s), got %d" callee
                 arity (List.length args)
           | None -> (* extern: checked at link time *) ()));
      Ast.Call (callee, List.map (resolve_expr scope frames) args)
  in
  { e with Ast.desc }

let rec resolve_stmt scope (frames : locals) (s : Ast.stmt) : Ast.stmt =
  let sdesc =
    match s.Ast.sdesc with
    | Ast.Decl (name, e) ->
      let e = resolve_expr scope frames e in
      (match frames with
      | top :: _ ->
        if Hashtbl.mem top name then
          err scope s.Ast.spos "duplicate local %s in the same block" name
        else Hashtbl.replace top name ()
      | [] -> assert false);
      Ast.Decl (name, e)
    | Ast.Assign (name, e) ->
      let e = resolve_expr scope frames e in
      if local_defined frames name then Ast.Assign (name, e)
      else if Hashtbl.mem scope.globals name then begin
        if Hashtbl.find scope.globals name <> 1 then
          err scope s.Ast.spos "cannot assign whole array %s" name;
        Ast.Assign (name, e)
      end
      else begin
        err scope s.Ast.spos "assignment to undeclared variable %s" name;
        Ast.Assign (name, e)
      end
    | Ast.Store (base, idx, v) ->
      if local_defined frames base then
        err scope s.Ast.spos "cannot index local variable %s" base
      else if not (Hashtbl.mem scope.globals base) then
        err scope s.Ast.spos "undeclared global %s" base;
      Ast.Store
        (base, resolve_expr scope frames idx, resolve_expr scope frames v)
    | Ast.If (cond, then_body, else_body) ->
      let cond = resolve_expr scope frames cond in
      let then_body = resolve_body scope frames then_body in
      let else_body = resolve_body scope frames else_body in
      Ast.If (cond, then_body, else_body)
    | Ast.While (cond, body) ->
      let cond = resolve_expr scope frames cond in
      scope.loop_depth <- scope.loop_depth + 1;
      let body = resolve_body scope frames body in
      scope.loop_depth <- scope.loop_depth - 1;
      Ast.While (cond, body)
    | Ast.For (init, cond, step, body) ->
      (* The init's bindings are visible to cond, step and body. *)
      let frame = Hashtbl.create 4 in
      let frames' = frame :: frames in
      let init = Option.map (resolve_stmt scope frames') init in
      let cond = Option.map (resolve_expr scope frames') cond in
      scope.loop_depth <- scope.loop_depth + 1;
      let body = resolve_body scope frames' body in
      let step = Option.map (resolve_stmt scope frames') step in
      scope.loop_depth <- scope.loop_depth - 1;
      Ast.For (init, cond, step, body)
    | Ast.Break ->
      if scope.loop_depth = 0 then
        err scope s.Ast.spos "break outside of a loop";
      Ast.Break
    | Ast.Continue ->
      if scope.loop_depth = 0 then
        err scope s.Ast.spos "continue outside of a loop";
      Ast.Continue
    | Ast.Return None -> Ast.Return None
    | Ast.Return (Some e) -> Ast.Return (Some (resolve_expr scope frames e))
    | Ast.Expr e -> Ast.Expr (resolve_expr scope frames e)
  in
  { s with Ast.sdesc }

and resolve_body scope frames body =
  let frame = Hashtbl.create 8 in
  List.map (resolve_stmt scope (frame :: frames)) body

let resolve_func scope name params body pos =
  let frame = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem frame p then err scope pos "duplicate parameter %s in %s" p name
      else Hashtbl.replace frame p ())
    params;
  List.map (resolve_stmt scope [ frame ]) body

let analyze (unit_ : Ast.unit_) =
  let scope = build_scope unit_ in
  let decls =
    List.map
      (fun decl ->
        match decl with
        | Ast.Global_decl _ -> decl
        | Ast.Func_decl { name; params; body; static; pos; end_line } ->
          Ast.Func_decl
            {
              name;
              params;
              body = resolve_func scope name params body pos;
              static;
              pos;
              end_line;
            })
      unit_.Ast.decls
  in
  match scope.errors with
  | [] -> Ok { unit_ with Ast.decls }
  | errors -> Error (List.rev errors)

let pp_error ppf { pos; msg } =
  Format.fprintf ppf "line %d, col %d: %s" pos.Ast.line pos.Ast.col msg
