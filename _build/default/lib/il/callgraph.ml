type node = {
  fname : string;
  module_name : string;
  arity : int;
  linkage : Func.linkage;
  mutable instr_count : int;
}

type edge = {
  caller : string;
  callee : string;
  site : Instr.site;
  mutable count : float;
}

type t = {
  node_table : (string, node) Hashtbl.t;
  mutable node_order : node list;  (* reverse definition order *)
  mutable edge_list : edge list;  (* reverse discovery order *)
  out_edges : (string, edge list) Hashtbl.t;  (* reverse site order *)
  in_edges : (string, edge list) Hashtbl.t;
  (* Cycle membership is queried once per call site by the inliner;
     memoize it (the edge *structure* never grows during inlining —
     sites only disappear — so cached cycles stay conservative). *)
  mutable cycle_cache : (string, unit) Hashtbl.t option;
}

let build modules =
  let t =
    {
      node_table = Hashtbl.create 256;
      node_order = [];
      edge_list = [];
      out_edges = Hashtbl.create 256;
      in_edges = Hashtbl.create 256;
      cycle_cache = None;
    }
  in
  List.iter
    (fun m ->
      List.iter
        (fun (f : Func.t) ->
          let n =
            {
              fname = f.Func.name;
              module_name = m.Ilmod.mname;
              arity = f.Func.arity;
              linkage = f.Func.linkage;
              instr_count = Func.instr_count f;
            }
          in
          Hashtbl.replace t.node_table f.Func.name n;
          t.node_order <- n :: t.node_order)
        m.Ilmod.funcs)
    modules;
  let push table key edge =
    let prev = Option.value ~default:[] (Hashtbl.find_opt table key) in
    Hashtbl.replace table key (edge :: prev)
  in
  List.iter
    (fun m ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (site, (c : Instr.call)) ->
              if
                (not (Intrinsics.is_intrinsic c.Instr.callee))
                && Hashtbl.mem t.node_table c.Instr.callee
              then begin
                let e =
                  {
                    caller = f.Func.name;
                    callee = c.Instr.callee;
                    site;
                    count = c.Instr.call_count;
                  }
                in
                t.edge_list <- e :: t.edge_list;
                push t.out_edges f.Func.name e;
                push t.in_edges c.Instr.callee e
              end)
            (Func.site_calls f))
        m.Ilmod.funcs)
    modules;
  t

let node t name = Hashtbl.find_opt t.node_table name

let nodes t = List.rev t.node_order

let edges t = List.rev t.edge_list

let callees t name =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.out_edges name))

let callers t name =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.in_edges name))

(* Tarjan's strongly-connected components, iterative over the
   deterministic node order.  Produces SCCs in reverse topological
   order of the condensation, i.e. callees-first, which is exactly the
   bottom-up order the inliner wants. *)
type scc_state = {
  mutable index : int;
  indices : (string, int) Hashtbl.t;
  lowlinks : (string, int) Hashtbl.t;
  on_stack : (string, unit) Hashtbl.t;
  mutable stack : string list;
  mutable sccs : string list list;  (* collected in completion order *)
}

let compute_sccs t =
  let st =
    {
      index = 0;
      indices = Hashtbl.create 256;
      lowlinks = Hashtbl.create 256;
      on_stack = Hashtbl.create 256;
      stack = [];
      sccs = [];
    }
  in
  let rec strongconnect v =
    Hashtbl.replace st.indices v st.index;
    Hashtbl.replace st.lowlinks v st.index;
    st.index <- st.index + 1;
    st.stack <- v :: st.stack;
    Hashtbl.replace st.on_stack v ();
    List.iter
      (fun e ->
        let w = e.callee in
        if not (Hashtbl.mem st.indices w) then begin
          strongconnect w;
          let lv = Hashtbl.find st.lowlinks v
          and lw = Hashtbl.find st.lowlinks w in
          Hashtbl.replace st.lowlinks v (min lv lw)
        end
        else if Hashtbl.mem st.on_stack w then begin
          let lv = Hashtbl.find st.lowlinks v
          and iw = Hashtbl.find st.indices w in
          Hashtbl.replace st.lowlinks v (min lv iw)
        end)
      (callees t v);
    if Hashtbl.find st.lowlinks v = Hashtbl.find st.indices v then begin
      let rec pop acc =
        match st.stack with
        | [] -> acc
        | w :: rest ->
          st.stack <- rest;
          Hashtbl.remove st.on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      st.sccs <- pop [] :: st.sccs
    end
  in
  List.iter
    (fun n -> if not (Hashtbl.mem st.indices n.fname) then strongconnect n.fname)
    (nodes t);
  (* Completion order is callees-first already; sccs was built in
     reverse completion order, so reverse it back. *)
  List.rev st.sccs

let bottom_up t = List.concat (compute_sccs t)

let cycle_members t =
  match t.cycle_cache with
  | Some members -> members
  | None ->
    let members = Hashtbl.create 32 in
    List.iter
      (fun scc ->
        match scc with
        | [ single ] ->
          if List.exists (fun e -> e.callee = single) (callees t single) then
            Hashtbl.replace members single ()
        | _ -> List.iter (fun n -> Hashtbl.replace members n ()) scc)
      (compute_sccs t);
    t.cycle_cache <- Some members;
    members

let in_cycle t name = Hashtbl.mem (cycle_members t) name

let total_edge_count t =
  List.fold_left (fun acc e -> acc +. e.count) 0.0 t.edge_list
