(** The program call graph: a global object (Figure 3 of the paper),
    always memory-resident during a CMO compilation.

    Nodes are functions (identified by name — names are unique across
    a linked program once local functions are qualified by the
    frontend); edges are call sites.  Edge counts come from profile
    correlation and drive both selectivity (section 5) and the
    aggressive-inlining heuristics. *)

type node = {
  fname : string;
  module_name : string;
  arity : int;
  linkage : Func.linkage;
  mutable instr_count : int;
      (** Size estimate used by inlining budgets; updated as
          transformations grow or shrink the body. *)
}

type edge = {
  caller : string;
  callee : string;
  site : Instr.site;
  mutable count : float;  (** Profile executions of this site. *)
}

type t

val build : Ilmod.t list -> t
(** Edges to intrinsics are not represented. Unresolvable callees
    (should have been rejected by {!Symtab.build}) are skipped. *)

val node : t -> string -> node option
val nodes : t -> node list
(** Deterministic (module, definition) order. *)

val edges : t -> edge list
(** Deterministic (caller layout) order. *)

val callees : t -> string -> edge list
(** Out-edges of a function, in site order. *)

val callers : t -> string -> edge list
(** In-edges of a function. *)

val bottom_up : t -> string list
(** Function names in bottom-up order: within the condensation
    (Tarjan SCCs), callees come before callers, so processing in this
    order sees fully-optimized callees at each call site — the order
    the inliner wants.  Members of a cycle appear in deterministic
    discovery order. *)

val in_cycle : t -> string -> bool
(** Whether the function is part of a recursive cycle (including
    self-recursion) — such functions are not inline candidates. *)

val total_edge_count : t -> float
(** Sum of all edge profile counts; the denominator of the
    selectivity percentage. *)
