type entry =
  | Func_entry of { module_name : string; arity : int; linkage : Func.linkage }
  | Global_entry of { module_name : string; size : int; exported : bool }

type error =
  | Duplicate of string * string * string
  | Undefined of string * string

type t = {
  table : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse definition order *)
}

let entry_module = function
  | Func_entry { module_name; _ } | Global_entry { module_name; _ } ->
    module_name

let entry_exported = function
  | Func_entry { linkage = Func.Exported; _ } -> true
  | Func_entry { linkage = Func.Local; _ } -> false
  | Global_entry { exported; _ } -> exported

let add t errors name entry =
  match Hashtbl.find_opt t.table name with
  | Some prev ->
    errors := Duplicate (name, entry_module prev, entry_module entry) :: !errors
  | None ->
    Hashtbl.replace t.table name entry;
    t.order <- name :: t.order

let find t ~current_module:_ name = Hashtbl.find_opt t.table name

let find_exported t name =
  match Hashtbl.find_opt t.table name with
  | Some e when entry_exported e -> Some e
  | Some _ | None -> None

let defined_names t = List.rev t.order

(* Names referenced by a function: callees plus global bases. *)
let referenced_names f =
  let names = ref [] in
  let note n = if not (List.mem n !names) then names := n :: !names in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Call { callee; _ } -> note callee
          | Instr.Load (_, { base; _ }) | Instr.Store ({ base; _ }, _) ->
            note base
          | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Probe _ -> ())
        b.Func.instrs)
    f.Func.blocks;
  List.rev !names

let build modules =
  let t = { table = Hashtbl.create 256; order = [] } in
  let errors = ref [] in
  List.iter
    (fun m ->
      List.iter
        (fun (g : Ilmod.global) ->
          add t errors g.Ilmod.gname
            (Global_entry
               {
                 module_name = m.Ilmod.mname;
                 size = g.Ilmod.size;
                 exported = g.Ilmod.exported;
               }))
        m.Ilmod.globals;
      List.iter
        (fun (f : Func.t) ->
          add t errors f.Func.name
            (Func_entry
               {
                 module_name = m.Ilmod.mname;
                 arity = f.Func.arity;
                 linkage = f.Func.linkage;
               }))
        m.Ilmod.funcs)
    modules;
  List.iter
    (fun m ->
      List.iter
        (fun f ->
          List.iter
            (fun name ->
              if not (Intrinsics.is_intrinsic name) then
                match find t ~current_module:m.Ilmod.mname name with
                | Some _ -> ()
                | None -> errors := Undefined (m.Ilmod.mname, name) :: !errors)
            (referenced_names f))
        m.Ilmod.funcs)
    modules;
  match !errors with [] -> Ok t | errs -> Error (List.rev errs)

let pp_error ppf = function
  | Duplicate (name, m1, m2) ->
    Format.fprintf ppf "symbol %s multiply defined (in %s and %s)" name m1 m2
  | Undefined (m, name) ->
    Format.fprintf ppf "module %s references undefined symbol %s" m name
