type global = {
  gname : string;
  size : int;
  init : int64 array;
  exported : bool;
}

type t = {
  mname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
}

let create mname = { mname; globals = []; funcs = [] }

let add_global t ~name ~size ?(init = [||]) ~exported () =
  assert (size >= 1);
  assert (Array.length init <= size);
  let g = { gname = name; size; init; exported } in
  t.globals <- t.globals @ [ g ];
  g

let add_func t f = t.funcs <- t.funcs @ [ f ]

let find_func t name = List.find_opt (fun f -> f.Func.name = name) t.funcs

let find_global t name = List.find_opt (fun g -> g.gname = name) t.globals

let src_lines t =
  List.fold_left (fun acc f -> acc + f.Func.src_lines) 0 t.funcs

let instr_count t =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 t.funcs

let replace_func t f =
  let found = ref false in
  t.funcs <-
    List.map
      (fun old ->
        if old.Func.name = f.Func.name then begin
          found := true;
          f
        end
        else old)
      t.funcs;
  if not !found then
    invalid_arg (Printf.sprintf "Ilmod.replace_func: no function %s" f.Func.name)

let pp ppf t =
  Format.fprintf ppf "@[<v>module %s" t.mname;
  List.iter
    (fun g ->
      Format.fprintf ppf "@,global %s[%d]%s" g.gname g.size
        (if g.exported then "" else " local"))
    t.globals;
  List.iter (fun f -> Format.fprintf ppf "@,%a" Func.pp f) t.funcs;
  Format.fprintf ppf "@]"
