(** The program-wide symbol table.

    One of the paper's "global objects" (Figure 3): always resident in
    memory, built once per CMO compilation from the modules being
    linked, and referred to by transitory objects.

    Names are globally unique: the frontend mangles module-private
    ([static]) symbols to ["module::name"], so resolution is a single
    flat namespace.  [Local] linkage survives as metadata meaning "no
    reference from outside the defining module existed at frontend
    time", which interprocedural analysis exploits (e.g. a Local
    function with no remaining callers can be deleted). *)

type entry =
  | Func_entry of { module_name : string; arity : int; linkage : Func.linkage }
  | Global_entry of { module_name : string; size : int; exported : bool }

type error =
  | Duplicate of string * string * string
      (** name, first module, second module. *)
  | Undefined of string * string
      (** referencing module, missing name. *)

type t

val build : Ilmod.t list -> (t, error list) result
(** Builds the table and checks that every callee and every global
    address base used by any function is defined by some module or is
    an intrinsic. *)

val find : t -> current_module:string -> string -> entry option
(** Resolution; [current_module] is kept for interface stability and
    diagnostics (the namespace is flat). *)

val find_exported : t -> string -> entry option
(** Resolution restricted to non-[static] symbols, as a plain
    (non-CMO) linker would see them. *)

val defined_names : t -> string list
(** All names in deterministic (module, definition) order. *)

val pp_error : Format.formatter -> error -> unit
