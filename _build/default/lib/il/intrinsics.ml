let print_name = "print"
let arg_name = "arg"

let is_intrinsic name = name = print_name || name = arg_name

let arity name = if is_intrinsic name then Some 1 else None
