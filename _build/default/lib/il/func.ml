type block = {
  label : Instr.label;
  mutable instrs : Instr.instr list;
  mutable term : Instr.terminator;
  mutable freq : float;
}

type linkage = Exported | Local

type t = {
  name : string;
  arity : int;
  mutable linkage : linkage;
  mutable entry : Instr.label;
  mutable blocks : block list;
  mutable next_reg : int;
  mutable next_label : int;
  mutable next_site : int;
  mutable src_lines : int;
}

let create ~name ~arity ~linkage =
  {
    name;
    arity;
    linkage;
    entry = 0;
    blocks = [];
    next_reg = arity;
    next_label = 0;
    next_site = 0;
    src_lines = 0;
  }

let new_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let new_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let new_site t =
  let s = t.next_site in
  t.next_site <- s + 1;
  s

let add_block t ?(freq = 0.0) instrs term =
  let block = { label = new_label t; instrs; term; freq } in
  t.blocks <- t.blocks @ [ block ];
  block

let find_block_opt t label = List.find_opt (fun b -> b.label = label) t.blocks

let find_block t label =
  match find_block_opt t label with
  | Some b -> b
  | None -> raise Not_found

let entry_block t = find_block t t.entry

let predecessors t =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.label []) t.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun succ ->
          match Hashtbl.find_opt preds succ with
          | Some ps -> Hashtbl.replace preds succ (ps @ [ b.label ])
          | None -> Hashtbl.replace preds succ [ b.label ])
        (Instr.targets b.term))
    t.blocks;
  preds

let reachable t =
  let seen = Hashtbl.create 16 in
  let rec visit label =
    if not (Hashtbl.mem seen label) then begin
      Hashtbl.replace seen label ();
      match find_block_opt t label with
      | Some b -> List.iter visit (Instr.targets b.term)
      | None -> ()
    end
  in
  if t.blocks <> [] then visit t.entry;
  seen

let instr_count t =
  List.fold_left (fun acc b -> acc + List.length b.instrs) 0 t.blocks

let site_calls t =
  List.concat_map
    (fun b ->
      List.filter_map
        (function Instr.Call c -> Some (c.Instr.site, c) | _ -> None)
        b.instrs)
    t.blocks

let copy t =
  let copy_instr = function
    | Instr.Call c -> Instr.Call { c with Instr.dst = c.Instr.dst }
    | i -> i
  in
  {
    t with
    blocks =
      List.map
        (fun b -> { b with instrs = List.map copy_instr b.instrs })
        t.blocks;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>func %s(%d args)%s [%d lines]"
    t.name t.arity
    (match t.linkage with Exported -> "" | Local -> " local")
    t.src_lines;
  List.iter
    (fun b ->
      Format.fprintf ppf "@,L%d%s%t:" b.label
        (if b.label = t.entry then " (entry)" else "")
        (fun ppf -> if b.freq > 0.0 then Format.fprintf ppf " {freq=%.0f}" b.freq);
      List.iter (fun i -> Format.fprintf ppf "@,  %a" Instr.pp_instr i) b.instrs;
      Format.fprintf ppf "@,  %a" Instr.pp_terminator b.term)
    t.blocks;
  Format.fprintf ppf "@]"
