lib/il/ilcodec.ml: Cmo_support Func Ilmod Instr Int64 List Printf
