lib/il/ilcodec.mli: Cmo_support Func Ilmod
