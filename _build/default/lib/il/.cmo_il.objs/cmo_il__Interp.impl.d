lib/il/interp.ml: Array Format Func Hashtbl Ilmod Instr Int64 Intrinsics List Option
