lib/il/callgraph.mli: Func Ilmod Instr
