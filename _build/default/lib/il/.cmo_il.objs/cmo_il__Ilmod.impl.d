lib/il/ilmod.ml: Array Format Func List Printf
