lib/il/func.mli: Format Hashtbl Instr
