lib/il/ilmod.mli: Format Func
