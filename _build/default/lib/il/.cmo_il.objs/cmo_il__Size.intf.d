lib/il/size.mli: Func Ilmod
