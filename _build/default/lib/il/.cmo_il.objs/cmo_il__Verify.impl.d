lib/il/verify.ml: Format Func Hashtbl Ilmod Instr Intrinsics List Option Symtab
