lib/il/intrinsics.ml:
