lib/il/verify.mli: Format Func Ilmod Symtab
