lib/il/instr.mli: Format
