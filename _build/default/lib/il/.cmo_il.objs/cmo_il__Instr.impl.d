lib/il/instr.ml: Format Int64 List
