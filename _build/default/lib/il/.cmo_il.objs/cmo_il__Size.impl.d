lib/il/size.ml: Array Func Ilmod Instr List String
