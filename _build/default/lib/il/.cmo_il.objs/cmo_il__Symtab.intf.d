lib/il/symtab.mli: Format Func Ilmod
