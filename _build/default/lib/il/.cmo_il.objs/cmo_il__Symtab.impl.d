lib/il/symtab.ml: Format Func Hashtbl Ilmod Instr Intrinsics List
