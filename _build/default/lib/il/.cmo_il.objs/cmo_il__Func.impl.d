lib/il/func.ml: Format Hashtbl Instr List
