lib/il/interp.mli: Ilmod
