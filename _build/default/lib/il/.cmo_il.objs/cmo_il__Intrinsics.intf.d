lib/il/intrinsics.mli:
