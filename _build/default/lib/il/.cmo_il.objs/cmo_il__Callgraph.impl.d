lib/il/callgraph.ml: Func Hashtbl Ilmod Instr Intrinsics List Option
