(** Reference interpreter for IL programs.

    Defines the observable semantics that every optimization level
    must preserve: the return value of [main], the sequence of values
    printed, and (when instrumented) the probe counters.  Differential
    tests run the same program unoptimized and optimized — here and on
    the VM — and require identical observables.

    Execution is metered in abstract steps (one per instruction or
    terminator) with a fuel limit so runaway programs fail cleanly. *)

type outcome = {
  ret : int64;  (** Return value of [main]. *)
  output : int64 list;  (** Values printed, in order. *)
  steps : int;  (** Instructions plus terminators executed. *)
  probes : (int * int64) list;
      (** Probe counter values keyed by probe id, sorted by id; empty
          for uninstrumented programs. *)
}

exception Runtime_error of string
(** Missing main, unresolved call, out-of-bounds global access, fuel
    exhaustion, stack overflow. *)

val run :
  ?input:int64 array -> ?fuel:int -> ?max_depth:int -> Ilmod.t list -> outcome
(** [run modules] executes [main] (which must exist, be exported and
    take no parameters).  [input] feeds the [arg] intrinsic; [fuel]
    bounds total steps (default 200 million); [max_depth] bounds call
    depth (default 10_000). *)

val run_func :
  ?input:int64 array ->
  ?fuel:int ->
  Ilmod.t list ->
  string ->
  int64 list ->
  outcome
(** Run a specific function with explicit arguments; for unit tests of
    single transformations. *)
