(** Structural IL verifier.

    Run after the frontend and between optimizer phases (in checked
    builds) to catch malformed IL early — the paper's section 6.3
    stresses how expensive it is to debug optimizer-induced breakage
    after the fact.  All checks are purely structural; semantic
    preservation is checked separately by differential execution. *)

type issue = {
  func : string;
  message : string;
}

val check_func : ?symtab:Symtab.t -> module_name:string -> Func.t -> issue list
(** Checks, per function:
    - the entry label exists and the block list is non-empty;
    - every branch target names an existing block;
    - block labels are unique;
    - every register mentioned is below [next_reg];
    - call-site ids are unique within the function and below
      [next_site];
    - intrinsic calls have the right arity;
    - with [symtab]: callees resolve to functions with matching arity
      and address bases resolve to globals. *)

val check_module : ?symtab:Symtab.t -> Ilmod.t -> issue list

val check_program : Ilmod.t list -> issue list
(** Builds the symbol table and checks every module against it; symbol
    table errors are reported as issues on a pseudo-function
    ["<symtab>"]. *)

val pp_issue : Format.formatter -> issue -> unit
