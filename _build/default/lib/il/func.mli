(** IL functions: a CFG of basic blocks in an explicit layout order.

    The block list order is the layout order — it is what the
    profile-guided code positioning phase permutes and what codegen
    emits, so "fall-through" is meaningful.  The entry block is
    identified explicitly and need not be first, although the verifier
    warns when it is not since codegen prefers it.

    Derived information (predecessors, dominators, liveness) is not
    stored here; following the paper's discipline (section 4.1) it is
    recomputed from scratch by the analyses that need it and can be
    discarded at any time. *)

type block = {
  label : Instr.label;
  mutable instrs : Instr.instr list;
  mutable term : Instr.terminator;
  mutable freq : float;
      (** Profile annotation: estimated executions of this block; 0
          when no profile is attached. *)
}

type linkage =
  | Exported  (** Visible to other modules; address may escape. *)
  | Local     (** Module-private; CMO may clone/remove freely. *)

type t = {
  name : string;
  arity : int;
  mutable linkage : linkage;
  mutable entry : Instr.label;
  mutable blocks : block list;  (** In layout order. *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable next_site : int;
  mutable src_lines : int;
      (** Source lines this function was lowered from; the unit of the
          paper's memory-per-line accounting. *)
}

val create : name:string -> arity:int -> linkage:linkage -> t
(** A fresh function with no blocks.  Registers [0..arity-1] are the
    parameters. *)

val add_block : t -> ?freq:float -> Instr.instr list -> Instr.terminator -> block
(** Append a new block (in layout order) with a fresh label. *)

val new_reg : t -> Instr.reg
val new_label : t -> Instr.label
val new_site : t -> Instr.site

val find_block : t -> Instr.label -> block
(** Raises [Not_found] for an unknown label. *)

val find_block_opt : t -> Instr.label -> block option

val entry_block : t -> block

val predecessors : t -> (Instr.label, Instr.label list) Hashtbl.t
(** Freshly computed predecessor map (derived data). Labels appear in
    deterministic layout order. *)

val reachable : t -> (Instr.label, unit) Hashtbl.t
(** Labels reachable from the entry block. *)

val instr_count : t -> int
(** Number of instructions, excluding terminators. *)

val site_calls : t -> (Instr.site * Instr.call) list
(** All call instructions with their sites, in layout order. *)

val copy : t -> t
(** Deep copy: shares no mutable state with the original.  Used by
    cloning, by the bug-isolation driver, and to snapshot a function
    before a speculative transformation. *)

val pp : Format.formatter -> t -> unit
