(** The relocatable (compacted) IL representation — section 4.2 of
    the paper.

    Expanded IL objects refer to symbols by name (OCaml strings shared
    by pointer); the relocatable form replaces every such reference by
    a persistent identifier (PID): an index into a name table owned by
    the enclosing module.  Encoding an object pool "swizzles" pointers
    to PIDs; decoding performs the paper's eager swizzling back.

    Objects are laid out in stack form — a block is immediately
    followed by its instructions, which are followed by their operands
    — and derived/redundant fields (block frequencies excepted, which
    are profile data, and list back-pointers, which simply do not
    exist in the compact form) are dropped.  The same bytes serve as
    the IL payload of object files and as the NAIM repository format,
    as in the production system.

    The compacted size of a pool is the honest [String.length] of its
    encoding, so the compaction ratios the benchmarks report are
    measured, not modeled. *)

val encode_func : names:Cmo_support.Intern.t -> Func.t -> string
(** Serialize one function; symbol references are interned into
    [names], which the caller persists alongside (it is part of the
    module symbol table pool). *)

val decode_func : names:Cmo_support.Intern.t -> string -> Func.t
(** Inverse of {!encode_func} given the same name table.
    @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

val encode_module : Ilmod.t -> string
(** Self-contained encoding: name table, globals, then functions. *)

val decode_module : string -> Ilmod.t
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

val roundtrip_func : Func.t -> Func.t
(** [decode (encode f)] through a private name table; used by tests
    and by the bug-isolation driver to deep-snapshot functions. *)
