(** Built-in routines available to every program.

    These model the runtime-library boundary: they are never subject
    to inlining or interprocedural analysis, and the call graph marks
    them as external leaves.

    - [print x] appends [x] to the program's observable output and
      returns [x].
    - [arg i] reads element [i] of the program input vector (cyclING
      modulo its length; 0 when the vector is empty).  This is how
      training and reference data sets reach the program. *)

val print_name : string
val arg_name : string

val is_intrinsic : string -> bool
val arity : string -> int option
(** [arity name] is the intrinsic's arity, or [None] when [name] is
    not an intrinsic. *)
