type reg = int
type label = int

type operand =
  | Reg of reg
  | Imm of int64

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not

type addr = { base : string; index : operand }

type site = int

type instr =
  | Move of reg * operand
  | Unop of unop * reg * operand
  | Binop of binop * reg * operand * operand
  | Load of reg * addr
  | Store of addr * operand
  | Call of call
  | Probe of int

and call = {
  dst : reg option;
  callee : string;
  args : operand list;
  site : site;
  mutable call_count : float;
}

type terminator =
  | Ret of operand option
  | Jmp of label
  | Br of { cond : operand; ifso : label; ifnot : label }

let map_operands f instr =
  match instr with
  | Move (d, a) -> Move (d, f a)
  | Unop (op, d, a) -> Unop (op, d, f a)
  | Binop (op, d, a, b) -> Binop (op, d, f a, f b)
  | Load (d, { base; index }) -> Load (d, { base; index = f index })
  | Store ({ base; index }, v) -> Store ({ base; index = f index }, f v)
  | Call c -> Call { c with args = List.map f c.args }
  | Probe _ -> instr

let map_term_operands f term =
  match term with
  | Ret (Some a) -> Ret (Some (f a))
  | Ret None -> term
  | Jmp _ -> term
  | Br { cond; ifso; ifnot } -> Br { cond = f cond; ifso; ifnot }

let def = function
  | Move (d, _) | Unop (_, d, _) | Binop (_, d, _, _) | Load (d, _) -> Some d
  | Call { dst; _ } -> dst
  | Store _ | Probe _ -> None

let operand_reg = function Reg r -> [ r ] | Imm _ -> []

let uses = function
  | Move (_, a) | Unop (_, _, a) -> operand_reg a
  | Binop (_, _, a, b) -> operand_reg a @ operand_reg b
  | Load (_, { index; _ }) -> operand_reg index
  | Store ({ index; _ }, v) -> operand_reg index @ operand_reg v
  | Call { args; _ } -> List.concat_map operand_reg args
  | Probe _ -> []

let term_uses = function
  | Ret (Some a) -> operand_reg a
  | Ret None | Jmp _ -> []
  | Br { cond; _ } -> operand_reg cond

let rename_def f instr =
  match instr with
  | Move (d, a) -> Move (f d, a)
  | Unop (op, d, a) -> Unop (op, f d, a)
  | Binop (op, d, a, b) -> Binop (op, f d, a, b)
  | Load (d, addr) -> Load (f d, addr)
  | Call ({ dst = Some d; _ } as c) -> Call { c with dst = Some (f d) }
  | Call { dst = None; _ } | Store _ | Probe _ -> instr

let is_pure = function
  | Move _ | Unop _ | Binop _ -> true
  | Load _ | Store _ | Call _ | Probe _ -> false

let targets = function
  | Ret _ -> []
  | Jmp l -> [ l ]
  | Br { ifso; ifnot; _ } -> [ ifso; ifnot ]

let retarget f = function
  | Ret _ as t -> t
  | Jmp l -> Jmp (f l)
  | Br { cond; ifso; ifnot } -> Br { cond; ifso = f ifso; ifnot = f ifnot }

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let bool_i64 b = if b then 1L else 0L

let eval_binop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if b = 0L then 0L else Int64.div a b
  | Rem -> if b = 0L then 0L else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right a (Int64.to_int b land 63)
  | Eq -> bool_i64 (Int64.equal a b)
  | Ne -> bool_i64 (not (Int64.equal a b))
  | Lt -> bool_i64 (Int64.compare a b < 0)
  | Le -> bool_i64 (Int64.compare a b <= 0)
  | Gt -> bool_i64 (Int64.compare a b > 0)
  | Ge -> bool_i64 (Int64.compare a b >= 0)

let eval_unop op a =
  match op with
  | Neg -> Int64.neg a
  | Not -> bool_i64 (Int64.equal a 0L)

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm i -> Format.fprintf ppf "%Ld" i

let pp_addr ppf { base; index } =
  Format.fprintf ppf "%s[%a]" base pp_operand index

let unop_name = function Neg -> "neg" | Not -> "not"

let pp_instr ppf = function
  | Move (d, a) -> Format.fprintf ppf "r%d = %a" d pp_operand a
  | Unop (op, d, a) ->
    Format.fprintf ppf "r%d = %s %a" d (unop_name op) pp_operand a
  | Binop (op, d, a, b) ->
    Format.fprintf ppf "r%d = %s %a, %a" d (binop_name op) pp_operand a
      pp_operand b
  | Load (d, addr) -> Format.fprintf ppf "r%d = load %a" d pp_addr addr
  | Store (addr, v) ->
    Format.fprintf ppf "store %a, %a" pp_addr addr pp_operand v
  | Call { dst; callee; args; site; call_count } ->
    let pp_dst ppf = function
      | Some d -> Format.fprintf ppf "r%d = " d
      | None -> ()
    in
    Format.fprintf ppf "%acall %s(%a) #s%d%t" pp_dst dst callee
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_operand)
      args site
      (fun ppf ->
        if call_count > 0.0 then Format.fprintf ppf " {cnt=%.0f}" call_count)
  | Probe p -> Format.fprintf ppf "probe %d" p

let pp_terminator ppf = function
  | Ret None -> Format.pp_print_string ppf "ret"
  | Ret (Some a) -> Format.fprintf ppf "ret %a" pp_operand a
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Br { cond; ifso; ifnot } ->
    Format.fprintf ppf "br %a, L%d, L%d" pp_operand cond ifso ifnot
