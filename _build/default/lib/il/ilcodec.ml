module Codec = Cmo_support.Codec
module Intern = Cmo_support.Intern
module W = Codec.Writer
module R = Codec.Reader

(* Tags are stable; bump [version] on any format change. *)
let version = 1

let binop_tag = function
  | Instr.Add -> 0 | Instr.Sub -> 1 | Instr.Mul -> 2 | Instr.Div -> 3
  | Instr.Rem -> 4 | Instr.And -> 5 | Instr.Or -> 6 | Instr.Xor -> 7
  | Instr.Shl -> 8 | Instr.Shr -> 9 | Instr.Eq -> 10 | Instr.Ne -> 11
  | Instr.Lt -> 12 | Instr.Le -> 13 | Instr.Gt -> 14 | Instr.Ge -> 15

let binop_of_tag = function
  | 0 -> Instr.Add | 1 -> Instr.Sub | 2 -> Instr.Mul | 3 -> Instr.Div
  | 4 -> Instr.Rem | 5 -> Instr.And | 6 -> Instr.Or | 7 -> Instr.Xor
  | 8 -> Instr.Shl | 9 -> Instr.Shr | 10 -> Instr.Eq | 11 -> Instr.Ne
  | 12 -> Instr.Lt | 13 -> Instr.Le | 14 -> Instr.Gt | 15 -> Instr.Ge
  | t -> R.corrupt (Printf.sprintf "bad binop tag %d" t)

let write_operand w = function
  | Instr.Reg r ->
    W.byte w 0;
    W.uvarint w r
  | Instr.Imm i ->
    W.byte w 1;
    (* Common immediates are tiny; zig-zag keeps them one byte. *)
    if Int64.of_int (Int64.to_int i) = i then begin
      W.byte w 0;
      W.varint w (Int64.to_int i)
    end
    else begin
      W.byte w 1;
      W.int64 w i
    end

let read_operand r =
  match R.byte r with
  | 0 -> Instr.Reg (R.uvarint r)
  | 1 -> (
    match R.byte r with
    | 0 -> Instr.Imm (Int64.of_int (R.varint r))
    | 1 -> Instr.Imm (R.int64 r)
    | t -> R.corrupt (Printf.sprintf "bad imm tag %d" t))
  | t -> R.corrupt (Printf.sprintf "bad operand tag %d" t)

let write_addr ~names w { Instr.base; index } =
  W.uvarint w (Intern.intern names base);
  write_operand w index

let read_addr ~names r =
  let base = Intern.name names (R.uvarint r) in
  let index = read_operand r in
  { Instr.base; index }

let write_instr ~names w = function
  | Instr.Move (d, a) ->
    W.byte w 0;
    W.uvarint w d;
    write_operand w a
  | Instr.Unop (op, d, a) ->
    W.byte w 1;
    W.byte w (match op with Instr.Neg -> 0 | Instr.Not -> 1);
    W.uvarint w d;
    write_operand w a
  | Instr.Binop (op, d, a, b) ->
    W.byte w 2;
    W.byte w (binop_tag op);
    W.uvarint w d;
    write_operand w a;
    write_operand w b
  | Instr.Load (d, addr) ->
    W.byte w 3;
    W.uvarint w d;
    write_addr ~names w addr
  | Instr.Store (addr, v) ->
    W.byte w 4;
    write_addr ~names w addr;
    write_operand w v
  | Instr.Call { dst; callee; args; site; call_count } ->
    W.byte w 5;
    (match dst with
    | None -> W.byte w 0
    | Some d ->
      W.byte w 1;
      W.uvarint w d);
    W.uvarint w (Intern.intern names callee);
    W.list w (write_operand w) args;
    W.uvarint w site;
    W.float w call_count
  | Instr.Probe p ->
    W.byte w 6;
    W.uvarint w p

let read_instr ~names r =
  match R.byte r with
  | 0 ->
    let d = R.uvarint r in
    Instr.Move (d, read_operand r)
  | 1 ->
    let op = match R.byte r with
      | 0 -> Instr.Neg
      | 1 -> Instr.Not
      | t -> R.corrupt (Printf.sprintf "bad unop tag %d" t)
    in
    let d = R.uvarint r in
    Instr.Unop (op, d, read_operand r)
  | 2 ->
    let op = binop_of_tag (R.byte r) in
    let d = R.uvarint r in
    let a = read_operand r in
    let b = read_operand r in
    Instr.Binop (op, d, a, b)
  | 3 ->
    let d = R.uvarint r in
    Instr.Load (d, read_addr ~names r)
  | 4 ->
    let addr = read_addr ~names r in
    Instr.Store (addr, read_operand r)
  | 5 ->
    let dst = match R.byte r with
      | 0 -> None
      | 1 -> Some (R.uvarint r)
      | t -> R.corrupt (Printf.sprintf "bad call dst tag %d" t)
    in
    let callee = Intern.name names (R.uvarint r) in
    let args = R.list r read_operand in
    let site = R.uvarint r in
    let call_count = R.float r in
    Instr.Call { dst; callee; args; site; call_count }
  | 6 -> Instr.Probe (R.uvarint r)
  | t -> R.corrupt (Printf.sprintf "bad instr tag %d" t)

let write_term w = function
  | Instr.Ret None -> W.byte w 0
  | Instr.Ret (Some a) ->
    W.byte w 1;
    write_operand w a
  | Instr.Jmp l ->
    W.byte w 2;
    W.uvarint w l
  | Instr.Br { cond; ifso; ifnot } ->
    W.byte w 3;
    write_operand w cond;
    W.uvarint w ifso;
    W.uvarint w ifnot

let read_term r =
  match R.byte r with
  | 0 -> Instr.Ret None
  | 1 -> Instr.Ret (Some (read_operand r))
  | 2 -> Instr.Jmp (R.uvarint r)
  | 3 ->
    let cond = read_operand r in
    let ifso = R.uvarint r in
    let ifnot = R.uvarint r in
    Instr.Br { cond; ifso; ifnot }
  | t -> R.corrupt (Printf.sprintf "bad terminator tag %d" t)

let write_block ~names w (b : Func.block) =
  W.uvarint w b.Func.label;
  W.float w b.Func.freq;
  W.list w (write_instr ~names w) b.Func.instrs;
  write_term w b.Func.term

let read_block ~names r : Func.block =
  let label = R.uvarint r in
  let freq = R.float r in
  let instrs = R.list r (read_instr ~names) in
  let term = read_term r in
  { Func.label; instrs; term; freq }

let write_func ~names w (f : Func.t) =
  W.uvarint w (Intern.intern names f.Func.name);
  W.uvarint w f.Func.arity;
  W.byte w (match f.Func.linkage with Func.Exported -> 0 | Func.Local -> 1);
  W.uvarint w f.Func.entry;
  W.uvarint w f.Func.next_reg;
  W.uvarint w f.Func.next_label;
  W.uvarint w f.Func.next_site;
  W.uvarint w f.Func.src_lines;
  W.list w (write_block ~names w) f.Func.blocks

let read_func ~names r : Func.t =
  let name = Intern.name names (R.uvarint r) in
  let arity = R.uvarint r in
  let linkage = match R.byte r with
    | 0 -> Func.Exported
    | 1 -> Func.Local
    | t -> R.corrupt (Printf.sprintf "bad linkage tag %d" t)
  in
  let entry = R.uvarint r in
  let next_reg = R.uvarint r in
  let next_label = R.uvarint r in
  let next_site = R.uvarint r in
  let src_lines = R.uvarint r in
  let blocks = R.list r (read_block ~names) in
  {
    Func.name;
    arity;
    linkage;
    entry;
    blocks;
    next_reg;
    next_label;
    next_site;
    src_lines;
  }

let encode_func ~names f =
  let w = W.create () in
  write_func ~names w f;
  W.contents w

let decode_func ~names bytes = read_func ~names (R.of_string bytes)

let write_global w (g : Ilmod.global) =
  W.string w g.Ilmod.gname;
  W.uvarint w g.Ilmod.size;
  W.bool w g.Ilmod.exported;
  W.array w (W.int64 w) g.Ilmod.init

let read_global r : Ilmod.global =
  let gname = R.string r in
  let size = R.uvarint r in
  let exported = R.bool r in
  let init = R.array r R.int64 in
  { Ilmod.gname; size; exported; init }

let encode_module (m : Ilmod.t) =
  let names = Intern.create () in
  (* Encode functions first so the name table is complete, then write
     the table ahead of the function bodies. *)
  let bodies = List.map (encode_func ~names) m.Ilmod.funcs in
  let w = W.create () in
  W.byte w version;
  W.string w m.Ilmod.mname;
  let name_list = ref [] in
  Intern.iter names (fun _ s -> name_list := s :: !name_list);
  W.list w (W.string w) (List.rev !name_list);
  W.list w (write_global w) m.Ilmod.globals;
  W.list w (W.string w) bodies;
  W.contents w

let decode_module bytes =
  let r = R.of_string bytes in
  let v = R.byte r in
  if v <> version then
    R.corrupt (Printf.sprintf "IL codec version mismatch: %d vs %d" v version);
  let mname = R.string r in
  let names = Intern.create () in
  List.iter (fun s -> ignore (Intern.intern names s)) (R.list r R.string);
  let globals = R.list r read_global in
  let funcs = List.map (decode_func ~names) (R.list r R.string) in
  { Ilmod.mname; globals; funcs }

let roundtrip_func f =
  let names = Intern.create () in
  decode_func ~names (encode_func ~names f)
