(** Structural memory model for expanded IL objects.

    The paper reports optimizer memory in absolute terms (1.7 KB per
    source line in the HP-UX 9.0 HLO, 0.9 KB after IR compaction,
    Figure 4/5 in MB).  The resident-set size of an OCaml process is
    GC-dominated and cannot be attributed to individual pools, so the
    NAIM accountant instead charges each pool its *modeled* expanded
    byte size, calibrated to the paper's reported economics:

    - an expanded IR object carries operand pointers, list links, and
      derived-attribute slots (dataflow arcs, loop annotations) that
      the paper says occupy about 2/3 of the object;
    - the compacted size is the honest byte length of the
      {!Ilcodec} encoding, so the expanded/compacted ratio is partly
      measured, partly modeled.

    All constants live here so the calibration is in one place. *)

val instr_core_bytes : int
(** Modeled bytes of an expanded instruction without derived slots. *)

val instr_derived_bytes : int
(** Modeled bytes of the derived-attribute slots of an instruction
    (about 2/3 of the whole object, per the paper's section 4.2.2). *)

val block_overhead_bytes : int
val func_overhead_bytes : int
val symbol_entry_bytes : int
(** Per symbol-table entry (name, kind, shape, handle). *)

val func_expanded_bytes : Func.t -> int
(** Full expanded footprint of a routine's IR pool, derived slots
    included. *)

val func_expanded_core_bytes : Func.t -> int
(** Expanded footprint with derived slots stripped — what remains
    resident for a routine whose derived data has been discarded. *)

val func_compacted_bytes : Func.t -> int
(** Modeled in-memory relocatable (compacted) footprint: derived
    slots gone, stack layout, pointer fields elided (paper section
    4.2.2).  This is what a compacted-but-resident pool charges; the
    serialized byte stream ({!Ilcodec}) is denser and is what reaches
    the repository and object files. *)

val module_symtab_expanded_bytes : Ilmod.t -> int
(** Expanded footprint of the module symbol table pool: globals,
    function entries and their names. *)

val module_expanded_bytes : Ilmod.t -> int
(** Symbol table plus all routine pools. *)
