(** An IL module: the unit of separate compilation.

    A module carries its own symbol table (its globals and functions),
    corresponding to the paper's per-module transitory symbol tables.
    Cross-module references are by name and resolved at link or CMO
    time against the program symbol table ({!Symtab}). *)

type global = {
  gname : string;
  size : int;  (** Number of 64-bit cells; scalars have size 1. *)
  init : int64 array;
      (** Initial values; shorter than [size] means remaining cells
          are zero. *)
  exported : bool;
      (** Module-private globals can only be addressed by this
          module's code, which interprocedural analysis exploits. *)
}

type t = {
  mname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
}

val create : string -> t

val add_global :
  t -> name:string -> size:int -> ?init:int64 array -> exported:bool -> unit -> global

val add_func : t -> Func.t -> unit

val find_func : t -> string -> Func.t option
val find_global : t -> string -> global option

val src_lines : t -> int
(** Total modeled source lines over the module's functions. *)

val instr_count : t -> int

val replace_func : t -> Func.t -> unit
(** Substitute a function with the same name; raises
    [Invalid_argument] when no such function exists. *)

val pp : Format.formatter -> t -> unit
