(* Calibration: the synthetic frontends lower roughly 2.5 IL
   instructions per source line (measured by the calibration test in
   test/test_size.ml), and the paper reports ~1.7 KB of expanded HLO
   memory per source line, of which about 2/3 is derived-attribute
   slots.  560 bytes per instruction (187 core + 373 derived) plus
   block/function/symbol overheads lands in that band. *)

let instr_core_bytes = 240
let instr_derived_bytes = 480
let block_overhead_bytes = 176
let func_overhead_bytes = 576
let symbol_entry_bytes = 96
let operand_bytes = 24

let instr_operand_count i =
  (match Instr.def i with Some _ -> 1 | None -> 0) + List.length (Instr.uses i)

let func_bytes ~with_derived (f : Func.t) =
  let per_instr =
    if with_derived then instr_core_bytes + instr_derived_bytes
    else instr_core_bytes
  in
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc i -> acc + per_instr + (operand_bytes * instr_operand_count i))
        (acc + block_overhead_bytes) b.Func.instrs)
    func_overhead_bytes f.Func.blocks

let func_expanded_bytes f = func_bytes ~with_derived:true f

let func_expanded_core_bytes f = func_bytes ~with_derived:false f

(* The in-memory relocatable form: derived slots dropped, objects in
   stack layout with list pointers and redundant fields removed
   (paper 4.2.2) — modeled as half the pointer-free core.  (The
   serialized byte stream used for the repository and object files is
   denser still; HP's in-core compact form kept objects traversable
   by the loader, hence word-aligned.) *)
let func_compacted_bytes f = 128 + (func_bytes ~with_derived:false f / 2)

let module_symtab_expanded_bytes (m : Ilmod.t) =
  let name_bytes s = 24 + String.length s in
  let globals =
    List.fold_left
      (fun acc (g : Ilmod.global) ->
        acc + symbol_entry_bytes + name_bytes g.Ilmod.gname
        + (8 * Array.length g.Ilmod.init))
      0 m.Ilmod.globals
  in
  let funcs =
    List.fold_left
      (fun acc (f : Func.t) -> acc + symbol_entry_bytes + name_bytes f.Func.name)
      0 m.Ilmod.funcs
  in
  256 + globals + funcs

let module_expanded_bytes m =
  module_symtab_expanded_bytes m
  + List.fold_left (fun acc f -> acc + func_expanded_bytes f) 0 m.Ilmod.funcs
