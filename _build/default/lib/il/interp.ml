type outcome = {
  ret : int64;
  output : int64 list;
  steps : int;
  probes : (int * int64) list;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Names are globally unique (the frontend mangles statics), so
   resolution is a single flat namespace. *)
type state = {
  funcs : (string, Func.t) Hashtbl.t;
  globals : (string, int64 array) Hashtbl.t;
  input : int64 array;
  mutable output_rev : int64 list;
  probes : (int, int64) Hashtbl.t;
  mutable steps : int;
  mutable fuel : int;
  max_depth : int;
}

let build_state ?(input = [||]) ?(fuel = 200_000_000) ?(max_depth = 10_000)
    modules =
  let st =
    {
      funcs = Hashtbl.create 256;
      globals = Hashtbl.create 256;
      input;
      output_rev = [];
      probes = Hashtbl.create 64;
      steps = 0;
      fuel;
      max_depth;
    }
  in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (g : Ilmod.global) ->
          let cells = Array.make g.Ilmod.size 0L in
          Array.blit g.Ilmod.init 0 cells 0 (Array.length g.Ilmod.init);
          Hashtbl.replace st.globals g.Ilmod.gname cells)
        m.Ilmod.globals;
      List.iter
        (fun (f : Func.t) -> Hashtbl.replace st.funcs f.Func.name f)
        m.Ilmod.funcs)
    modules;
  st

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.fuel then error "fuel exhausted after %d steps" st.steps

let rec exec_func st ~depth (f : Func.t) args =
  if depth > st.max_depth then error "call depth exceeds %d" st.max_depth;
  let regs = Array.make (max f.Func.next_reg 1) 0L in
  List.iteri (fun i v -> if i < f.Func.arity then regs.(i) <- v) args;
  let value = function
    | Instr.Reg r -> regs.(r)
    | Instr.Imm i -> i
  in
  let cell addr =
    let base =
      match Hashtbl.find_opt st.globals addr.Instr.base with
      | Some cells -> cells
      | None -> error "undefined global %s" addr.Instr.base
    in
    let idx = Int64.to_int (value addr.Instr.index) in
    if idx < 0 || idx >= Array.length base then
      error "out-of-bounds access %s[%d] (size %d) in %s" addr.Instr.base idx
        (Array.length base) f.Func.name;
    (base, idx)
  in
  let do_call (c : Instr.call) =
    let argv = List.map value c.Instr.args in
    let result =
      if c.Instr.callee = Intrinsics.print_name then begin
        let v = List.nth argv 0 in
        st.output_rev <- v :: st.output_rev;
        v
      end
      else if c.Instr.callee = Intrinsics.arg_name then begin
        let i = Int64.to_int (List.nth argv 0) in
        let n = Array.length st.input in
        if n = 0 then 0L else st.input.(((i mod n) + n) mod n)
      end
      else begin
        match Hashtbl.find_opt st.funcs c.Instr.callee with
        | Some callee -> exec_func st ~depth:(depth + 1) callee argv
        | None -> error "call to undefined function %s" c.Instr.callee
      end
    in
    match c.Instr.dst with Some d -> regs.(d) <- result | None -> ()
  in
  let rec run_block label =
    let b =
      match Func.find_block_opt f label with
      | Some b -> b
      | None -> error "jump to missing block L%d in %s" label f.Func.name
    in
    List.iter
      (fun i ->
        tick st;
        match i with
        | Instr.Move (d, a) -> regs.(d) <- value a
        | Instr.Unop (op, d, a) -> regs.(d) <- Instr.eval_unop op (value a)
        | Instr.Binop (op, d, a, b) ->
          regs.(d) <- Instr.eval_binop op (value a) (value b)
        | Instr.Load (d, addr) ->
          let base, idx = cell addr in
          regs.(d) <- base.(idx)
        | Instr.Store (addr, v) ->
          let base, idx = cell addr in
          base.(idx) <- value v
        | Instr.Call c -> do_call c
        | Instr.Probe p ->
          let prev = Option.value ~default:0L (Hashtbl.find_opt st.probes p) in
          Hashtbl.replace st.probes p (Int64.add prev 1L))
      b.Func.instrs;
    tick st;
    match b.Func.term with
    | Instr.Ret None -> 0L
    | Instr.Ret (Some a) -> value a
    | Instr.Jmp l -> run_block l
    | Instr.Br { cond; ifso; ifnot } ->
      if value cond <> 0L then run_block ifso else run_block ifnot
  in
  if f.Func.blocks = [] then error "function %s has no blocks" f.Func.name;
  run_block f.Func.entry

let collect st ret =
  let probes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.probes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { ret; output = List.rev st.output_rev; steps = st.steps; probes }

let run ?input ?fuel ?max_depth modules =
  let st = build_state ?input ?fuel ?max_depth modules in
  match Hashtbl.find_opt st.funcs "main" with
  | None -> error "no main function"
  | Some main ->
    let ret = exec_func st ~depth:0 main [] in
    collect st ret

let run_func ?input ?fuel modules name args =
  let st = build_state ?input ?fuel modules in
  match Hashtbl.find_opt st.funcs name with
  | None -> error "no function %s" name
  | Some f ->
    let ret = exec_func st ~depth:0 f args in
    collect st ret
