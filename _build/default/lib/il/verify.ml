type issue = {
  func : string;
  message : string;
}

let check_func ?symtab ~module_name (f : Func.t) =
  let issues = ref [] in
  let report fmt =
    Format.kasprintf (fun message -> issues := { func = f.Func.name; message } :: !issues) fmt
  in
  if f.Func.blocks = [] then report "function has no blocks"
  else begin
    let labels = Hashtbl.create 16 in
    List.iter
      (fun b ->
        if Hashtbl.mem labels b.Func.label then
          report "duplicate block label L%d" b.Func.label
        else Hashtbl.replace labels b.Func.label ();
        if b.Func.label >= f.Func.next_label then
          report "block label L%d exceeds label counter %d" b.Func.label
            f.Func.next_label)
      f.Func.blocks;
    if not (Hashtbl.mem labels f.Func.entry) then
      report "entry label L%d does not exist" f.Func.entry;
    let check_reg r =
      if r < 0 || r >= f.Func.next_reg then
        report "register r%d out of range (next_reg=%d)" r f.Func.next_reg
    in
    let check_name_as_func callee nargs =
      match Intrinsics.arity callee with
      | Some a ->
        if nargs <> a then
          report "intrinsic %s called with %d args, expects %d" callee nargs a
      | None -> (
        match symtab with
        | None -> ()
        | Some st -> (
          match Symtab.find st ~current_module:module_name callee with
          | Some (Symtab.Func_entry { arity; _ }) ->
            if nargs <> arity then
              report "call to %s passes %d args, expects %d" callee nargs arity
          | Some (Symtab.Global_entry _) ->
            report "call target %s is a global, not a function" callee
          | None -> report "call to undefined function %s" callee))
    in
    let check_base base =
      match symtab with
      | None -> ()
      | Some st -> (
        match Symtab.find st ~current_module:module_name base with
        | Some (Symtab.Global_entry _) -> ()
        | Some (Symtab.Func_entry _) ->
          report "address base %s is a function, not a global" base
        | None -> report "reference to undefined global %s" base)
    in
    let sites = Hashtbl.create 16 in
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            Option.iter check_reg (Instr.def i);
            List.iter check_reg (Instr.uses i);
            match i with
            | Instr.Call { callee; args; site; _ } ->
              check_name_as_func callee (List.length args);
              if site < 0 || site >= f.Func.next_site then
                report "call site s%d exceeds site counter %d" site
                  f.Func.next_site;
              if Hashtbl.mem sites site then
                report "duplicate call site id s%d" site
              else Hashtbl.replace sites site ()
            | Instr.Load (_, { base; _ }) -> check_base base
            | Instr.Store ({ base; _ }, _) -> check_base base
            | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Probe _ -> ())
          b.Func.instrs;
        List.iter check_reg (Instr.term_uses b.Func.term);
        List.iter
          (fun target ->
            if not (Hashtbl.mem labels target) then
              report "branch to missing label L%d from L%d" target b.Func.label)
          (Instr.targets b.Func.term))
      f.Func.blocks
  end;
  List.rev !issues

let check_module ?symtab (m : Ilmod.t) =
  List.concat_map
    (fun f -> check_func ?symtab ~module_name:m.Ilmod.mname f)
    m.Ilmod.funcs

let check_program modules =
  match Symtab.build modules with
  | Error errs ->
    List.map
      (fun e ->
        { func = "<symtab>"; message = Format.asprintf "%a" Symtab.pp_error e })
      errs
  | Ok symtab -> List.concat_map (fun m -> check_module ~symtab m) modules

let pp_issue ppf { func; message } = Format.fprintf ppf "[%s] %s" func message
