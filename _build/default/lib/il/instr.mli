(** The common intermediate language (IL).

    This is the interchange format of the whole pipeline, playing the
    role of the HP-UX "common intermediate language" of the paper's
    section 3: frontends lower source into it, HLO transforms it, LLO
    consumes it, and in CMO mode it is what the object files carry.

    The IL is an untyped (all values are 64-bit integers) three-address
    code over function-local virtual registers, with explicit basic
    blocks.  It is deliberately not SSA: the 1990s production pipeline
    the paper describes predates SSA middle ends, and non-SSA makes
    inlining and cloning plain block grafting plus register renaming. *)

type reg = int
(** Function-local virtual register.  Parameters are registers
    [0 .. arity-1]. *)

type label = int
(** Function-local basic-block label. *)

type operand =
  | Reg of reg
  | Imm of int64

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
      (** Comparisons produce 0 or 1.  [Div] and [Rem] by zero produce
          0, matching the VM, so optimization cannot introduce traps. *)

type unop = Neg | Not
(** [Not] is logical: [Not x] is 1 when [x = 0], else 0. *)

(** Address of a global memory cell: a named global plus an element
    index.  Scalars are arrays of length 1 with index [Imm 0]. *)
type addr = { base : string; index : operand }

(** Call-site identifier, unique within the enclosing function and
    stable across recompilation of unchanged source; the unit of the
    paper's call-site selectivity and the key for call profiles. *)
type site = int

type instr =
  | Move of reg * operand
  | Unop of unop * reg * operand
  | Binop of binop * reg * operand * operand
  | Load of reg * addr
  | Store of addr * operand
  | Call of call
  | Probe of int
      (** Profile counter increment; inserted by instrumentation
          (+I), counted by the VM/interpreter, stripped by codegen in
          non-instrumented builds. *)

and call = {
  dst : reg option;
  callee : string;
  args : operand list;
  site : site;
  mutable call_count : float;
      (** Profile annotation: executions of this site, from
          correlation; 0 when no profile is attached. *)
}

type terminator =
  | Ret of operand option
  | Jmp of label
  | Br of { cond : operand; ifso : label; ifnot : label }

val map_operands : (operand -> operand) -> instr -> instr
(** Rewrite every operand read by the instruction (not the
    destination register). *)

val map_term_operands : (operand -> operand) -> terminator -> terminator

val def : instr -> reg option
(** The register written, if any. *)

val uses : instr -> reg list
(** Registers read, in operand order (may contain duplicates). *)

val term_uses : terminator -> reg list

val rename_def : (reg -> reg) -> instr -> instr
(** Rewrite the destination register. *)

val is_pure : instr -> bool
(** True when the instruction has no side effect and its result is
    fully determined by its operands — candidates for DCE and CSE.
    Loads are impure here (stores/calls may clobber memory); the
    optimizer handles them with its own invalidation logic. *)

val targets : terminator -> label list
(** Successor labels, in branch order. *)

val retarget : (label -> label) -> terminator -> terminator

val pp_operand : Format.formatter -> operand -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_terminator : Format.formatter -> terminator -> unit

val binop_name : binop -> string
val eval_binop : binop -> int64 -> int64 -> int64
(** Constant-fold a binary operation with the IL's semantics
    (division by zero yields 0; shifts are masked to 0..63). *)

val eval_unop : unop -> int64 -> int64
