module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

type value = Top | Const of int64 | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const x, Const y when Int64.equal x y -> Const x
  | Const _, Const _ | Bottom, _ | _, Bottom -> Bottom

let transfer_instr state i =
  let operand_value = function
    | Instr.Imm c -> Const c
    | Instr.Reg r -> state.(r)
  in
  match i with
  | Instr.Move (d, a) -> state.(d) <- operand_value a
  | Instr.Unop (op, d, a) ->
    state.(d) <-
      (match operand_value a with
      | Const c -> Const (Instr.eval_unop op c)
      | Top -> Top
      | Bottom -> Bottom)
  | Instr.Binop (op, d, a, b) ->
    state.(d) <-
      (match (operand_value a, operand_value b) with
      | Const x, Const y -> Const (Instr.eval_binop op x y)
      | Top, _ | _, Top -> Top
      | Bottom, _ | _, Bottom -> Bottom)
  | Instr.Load (d, _) -> state.(d) <- Bottom
  | Instr.Call { dst = Some d; _ } -> state.(d) <- Bottom
  | Instr.Call { dst = None; _ } | Instr.Store _ | Instr.Probe _ -> ()

(* Successors that can actually execute given the converged state: a
   branch whose condition is a known constant feeds only its taken
   arm — the sparse-conditional refinement, which keeps one arm's
   constants from being polluted by the dead arm at a join. *)
let feasible_successors state (b : Func.block) =
  match b.Func.term with
  | Instr.Br { cond; ifso; ifnot } -> (
    let v =
      match cond with
      | Instr.Imm c -> Const c
      | Instr.Reg r -> state.(r)
    in
    match v with
    | Const c -> if Int64.equal c 0L then [ ifnot ] else [ ifso ]
    | Top | Bottom -> [ ifso; ifnot ])
  | Instr.Jmp _ | Instr.Ret _ -> Instr.targets b.Func.term

let run (f : Func.t) =
  let nregs = max f.Func.next_reg 1 in
  let doms = Dominators.compute f in
  let rpo = Dominators.reverse_postorder doms in
  let in_states : (Instr.label, value array) Hashtbl.t = Hashtbl.create 16 in
  let entry_state = Array.make nregs Top in
  (* Parameters hold unknown caller values. *)
  for r = 0 to f.Func.arity - 1 do
    entry_state.(r) <- Bottom
  done;
  Hashtbl.replace in_states f.Func.entry entry_state;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        match Hashtbl.find_opt in_states label with
        | None -> ()  (* not yet reached *)
        | Some in_state -> (
          match Func.find_block_opt f label with
          | None -> ()
          | Some b ->
            let state = Array.copy in_state in
            List.iter (transfer_instr state) b.Func.instrs;
            List.iter
              (fun succ ->
                match Hashtbl.find_opt in_states succ with
                | None ->
                  Hashtbl.replace in_states succ (Array.copy state);
                  changed := true
                | Some succ_state ->
                  for r = 0 to nregs - 1 do
                    let m = meet succ_state.(r) state.(r) in
                    if m <> succ_state.(r) then begin
                      succ_state.(r) <- m;
                      changed := true
                    end
                  done)
              (feasible_successors state b)))
      rpo
  done;
  (* Rewrite using the converged per-block entry states. *)
  let rewrites = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      match Hashtbl.find_opt in_states b.Func.label with
      | None -> ()  (* unreachable: left for Cfg.remove_unreachable *)
      | Some in_state ->
        let state = Array.copy in_state in
        let subst op =
          match op with
          | Instr.Imm _ -> op
          | Instr.Reg r -> (
            match state.(r) with
            | Const c ->
              incr rewrites;
              Instr.Imm c
            | Top | Bottom -> op)
        in
        b.Func.instrs <-
          List.map
            (fun i ->
              let i = Instr.map_operands subst i in
              (* Fold pure all-immediate instructions into moves. *)
              let i =
                match i with
                | Instr.Unop (op, d, Instr.Imm c) ->
                  incr rewrites;
                  Instr.Move (d, Instr.Imm (Instr.eval_unop op c))
                | Instr.Binop (op, d, Instr.Imm x, Instr.Imm y) ->
                  incr rewrites;
                  Instr.Move (d, Instr.Imm (Instr.eval_binop op x y))
                | other -> other
              in
              transfer_instr state i;
              i)
            b.Func.instrs;
        b.Func.term <- Instr.map_term_operands subst b.Func.term)
    f.Func.blocks;
  !rewrites
