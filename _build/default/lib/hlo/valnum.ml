module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

(* Value-number keys.  [Origin r] numbers the value a register holds
   on block entry; [Mem] keys carry a memory generation bumped by
   every store and call. *)
type key =
  | Const_k of int64
  | Origin of Instr.reg
  | Unop_k of Instr.unop * int
  | Binop_k of Instr.binop * int * int
  | Load_k of string * int * int  (* base, index vn, memory generation *)

let commutative = function
  | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor | Instr.Eq
  | Instr.Ne -> true
  | Instr.Sub | Instr.Div | Instr.Rem | Instr.Shl | Instr.Shr | Instr.Lt
  | Instr.Le | Instr.Gt | Instr.Ge -> false

type state = {
  key_vn : (key, int) Hashtbl.t;
  reg_vn : (Instr.reg, int) Hashtbl.t;
  rep : (int, Instr.reg) Hashtbl.t;  (* vn -> register currently holding it *)
  const_of : (int, int64) Hashtbl.t;  (* vn -> known constant value *)
  nonzero : (int, unit) Hashtbl.t;
      (* Values proved non-zero on this path (we sit under the taken
         arm of a branch on them): the fuel of redundant branch
         elimination. *)
  mutable next_vn : int;
  mutable memgen : int;  (* bumped by calls: clobbers every global *)
  base_gen : (string, int) Hashtbl.t;
      (* Memory disambiguation: distinct globals cannot alias (MiniC
         has no address-of), so a store to base [g] only invalidates
         loads of [g] — each base carries its own generation on top of
         the global one. *)
}

let fresh st =
  let vn = st.next_vn in
  st.next_vn <- vn + 1;
  vn

let vn_of_key st key =
  match Hashtbl.find_opt st.key_vn key with
  | Some vn -> vn
  | None ->
    let vn = fresh st in
    Hashtbl.replace st.key_vn key vn;
    (match key with
    | Const_k c -> Hashtbl.replace st.const_of vn c
    | Origin _ | Unop_k _ | Binop_k _ | Load_k _ -> ());
    vn

let vn_of_reg st r =
  match Hashtbl.find_opt st.reg_vn r with
  | Some vn -> vn
  | None ->
    let vn = vn_of_key st (Origin r) in
    Hashtbl.replace st.reg_vn r vn;
    if not (Hashtbl.mem st.rep vn) then Hashtbl.replace st.rep vn r;
    vn

let vn_of_operand st = function
  | Instr.Imm c -> vn_of_key st (Const_k c)
  | Instr.Reg r -> vn_of_reg st r

(* Redefining [d]: if it was the representative of its old value,
   that value loses its holder. *)
let kill_def st d =
  (match Hashtbl.find_opt st.reg_vn d with
  | Some old_vn when Hashtbl.find_opt st.rep old_vn = Some d ->
    Hashtbl.remove st.rep old_vn
  | Some _ | None -> ());
  Hashtbl.remove st.reg_vn d

let set_def st d vn =
  kill_def st d;
  Hashtbl.replace st.reg_vn d vn;
  if not (Hashtbl.mem st.rep vn) then Hashtbl.replace st.rep vn d

let copy_state st =
  {
    key_vn = Hashtbl.copy st.key_vn;
    reg_vn = Hashtbl.copy st.reg_vn;
    rep = Hashtbl.copy st.rep;
    const_of = Hashtbl.copy st.const_of;
    nonzero = Hashtbl.copy st.nonzero;
    next_vn = st.next_vn;
    memgen = st.memgen;
    base_gen = Hashtbl.copy st.base_gen;
  }

let fresh_state () =
  {
    key_vn = Hashtbl.create 16;
    reg_vn = Hashtbl.create 16;
    rep = Hashtbl.create 16;
    const_of = Hashtbl.create 8;
    nonzero = Hashtbl.create 4;
    next_vn = 0;
    memgen = 0;
    base_gen = Hashtbl.create 8;
  }

let process_block st (b : Func.block) replaced =
  let gen_of base =
    st.memgen + Option.value ~default:0 (Hashtbl.find_opt st.base_gen base)
  in
  b.Func.instrs <-
    List.map
      (fun i ->
        let try_cse d key =
          let vn = vn_of_key st key in
          match Hashtbl.find_opt st.rep vn with
          | Some r when r <> d ->
            incr replaced;
            set_def st d vn;
            Instr.Move (d, Instr.Reg r)
          | Some _ | None ->
            set_def st d vn;
            i
        in
        match i with
        | Instr.Move (d, a) ->
          let vn = vn_of_operand st a in
          set_def st d vn;
          i
        | Instr.Unop (op, d, a) -> try_cse d (Unop_k (op, vn_of_operand st a))
        | Instr.Binop (op, d, a, b') ->
          let va = vn_of_operand st a and vb = vn_of_operand st b' in
          let va, vb = if commutative op && vb < va then (vb, va) else (va, vb) in
          try_cse d (Binop_k (op, va, vb))
        | Instr.Load (d, { Instr.base; index }) ->
          try_cse d (Load_k (base, vn_of_operand st index, gen_of base))
        | Instr.Store ({ Instr.base; _ }, _) ->
          Hashtbl.replace st.base_gen base (1 + gen_of base - st.memgen);
          i
        | Instr.Call c ->
          st.memgen <- st.memgen + 1;
          (match c.Instr.dst with
          | Some d -> set_def st d (fresh st)
          | None -> ());
          i
        | Instr.Probe _ -> i)
      b.Func.instrs;
  (* Redundant branch elimination (an HLO transformation the paper's
     section 3 lists): if the condition's value is already known on
     this path — a constant, or proved non-zero by a dominating
     branch in the same extended basic block — the branch folds. *)
  match b.Func.term with
  | Instr.Br { cond = Instr.Reg c; ifso; ifnot } -> (
    let vn = vn_of_reg st c in
    match Hashtbl.find_opt st.const_of vn with
    | Some 0L ->
      b.Func.term <- Instr.Jmp ifnot;
      incr replaced
    | Some _ ->
      b.Func.term <- Instr.Jmp ifso;
      incr replaced
    | None ->
      if Hashtbl.mem st.nonzero vn then begin
        b.Func.term <- Instr.Jmp ifso;
        incr replaced
      end)
  | Instr.Br _ | Instr.Jmp _ | Instr.Ret _ -> ()

(* Superlocal scope: a block with a unique, already-processed
   predecessor starts from a copy of that predecessor's exit state —
   every path into the block runs through the predecessor, so its
   value table is valid here (extended-basic-block value numbering).
   Join points start fresh. *)
let run (f : Func.t) =
  let replaced = ref 0 in
  let doms = Dominators.compute f in
  let preds = Func.predecessors f in
  let exit_states = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun label ->
      match Func.find_block_opt f label with
      | None -> ()
      | Some b ->
        let st =
          match Hashtbl.find_opt preds label with
          | Some [ p ]
            when p <> label && Hashtbl.mem seen p -> (
            match Hashtbl.find_opt exit_states p with
            | Some parent ->
              let st = copy_state parent in
              (* Record what the edge from the parent proves about the
                 branch condition: 0 on the fall-through (ifnot) arm,
                 non-zero on the taken (ifso) arm. *)
              (match Func.find_block_opt f p with
              | Some pb -> (
                match pb.Func.term with
                | Instr.Br { cond = Instr.Reg c; ifso; ifnot }
                  when ifso <> ifnot -> (
                  match Hashtbl.find_opt st.reg_vn c with
                  | Some vn ->
                    if label = ifnot then begin
                      let zero_vn = vn_of_key st (Const_k 0L) in
                      Hashtbl.replace st.reg_vn c zero_vn;
                      if not (Hashtbl.mem st.rep zero_vn) then
                        Hashtbl.replace st.rep zero_vn c
                    end
                    else if label = ifso then
                      Hashtbl.replace st.nonzero vn ()
                  | None -> ())
                | Instr.Br _ | Instr.Jmp _ | Instr.Ret _ -> ())
              | None -> ());
              st
            | None -> fresh_state ())
          | _ -> fresh_state ()
        in
        process_block st b replaced;
        Hashtbl.replace exit_states label st;
        Hashtbl.replace seen label ())
    (Dominators.reverse_postorder doms);
  (* Unreachable blocks get plain local numbering so the pass is a
     total function of the CFG (they are dead code either way). *)
  List.iter
    (fun (b : Func.block) ->
      if not (Hashtbl.mem seen b.Func.label) then
        process_block (fresh_state ()) b replaced)
    f.Func.blocks;
  !replaced
