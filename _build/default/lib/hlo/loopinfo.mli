(** Natural-loop discovery from back edges.

    A back edge is an edge [t -> h] where [h] dominates [t]; the
    natural loop of that edge is [h] plus every block that reaches
    [t] without passing through [h].  Loops sharing a header are
    merged.  Derived data: recomputed per use, never kept. *)

type loop = {
  header : Cmo_il.Instr.label;
  body : Cmo_il.Instr.label list;
      (** All member labels including the header, deterministic order. *)
  depth : int;  (** 1 = outermost. *)
}

type t

val compute : Cmo_il.Func.t -> t

val loops : t -> loop list
(** Outermost first, then by header label. *)

val loop_of : t -> Cmo_il.Instr.label -> loop option
(** The innermost loop containing the label, if any. *)

val depth_of : t -> Cmo_il.Instr.label -> int
(** 0 when outside all loops. *)

val modeled_bytes : t -> int
