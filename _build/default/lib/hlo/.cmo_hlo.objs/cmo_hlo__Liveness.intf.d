lib/hlo/liveness.mli: Cmo_il
