lib/hlo/unroll.mli: Cmo_il
