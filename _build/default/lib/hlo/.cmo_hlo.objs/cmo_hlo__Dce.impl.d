lib/hlo/dce.ml: Cmo_il Hashtbl List Liveness Option
