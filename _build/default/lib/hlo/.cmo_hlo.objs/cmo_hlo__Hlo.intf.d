lib/hlo/hlo.mli: Clone Cmo_il Cmo_naim Format Inline Ipa
