lib/hlo/dominators.ml: Cmo_il Hashtbl List Option
