lib/hlo/copyprop.ml: Cmo_il Hashtbl List
