lib/hlo/clone.ml: Cmo_il Cmo_naim Hashtbl List Printf
