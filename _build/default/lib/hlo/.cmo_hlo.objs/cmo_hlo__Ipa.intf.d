lib/hlo/ipa.mli: Cmo_naim
