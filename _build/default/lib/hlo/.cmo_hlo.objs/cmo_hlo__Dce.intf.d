lib/hlo/dce.mli: Cmo_il
