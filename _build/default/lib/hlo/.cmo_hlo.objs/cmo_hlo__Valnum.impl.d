lib/hlo/valnum.ml: Cmo_il Dominators Hashtbl List Option
