lib/hlo/constprop.ml: Array Cmo_il Dominators Hashtbl Int64 List
