lib/hlo/inline.ml: Cfg Cmo_il Cmo_naim Hashtbl List Option
