lib/hlo/loopinfo.ml: Cmo_il Dominators Hashtbl List Option
