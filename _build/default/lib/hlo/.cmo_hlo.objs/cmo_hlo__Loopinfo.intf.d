lib/hlo/loopinfo.mli: Cmo_il
