lib/hlo/unroll.ml: Cfg Cmo_il Hashtbl Int64 List Loopinfo Option
