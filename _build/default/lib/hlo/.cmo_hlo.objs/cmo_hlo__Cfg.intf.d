lib/hlo/cfg.mli: Cmo_il
