lib/hlo/clone.mli: Cmo_il Cmo_naim
