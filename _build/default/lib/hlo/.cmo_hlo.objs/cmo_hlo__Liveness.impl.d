lib/hlo/liveness.ml: Bytes Char Cmo_il Hashtbl List Option
