lib/hlo/licm.mli: Cmo_il
