lib/hlo/phase.ml: Cfg Cmo_il Cmo_naim Constprop Copyprop Dce Dominators Licm Liveness Loopinfo Unroll Valnum
