lib/hlo/selectivity.mli: Cmo_il Format
