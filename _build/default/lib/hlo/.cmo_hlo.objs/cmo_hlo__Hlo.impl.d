lib/hlo/hlo.ml: Clone Cmo_naim Format Inline Ipa List Option Phase
