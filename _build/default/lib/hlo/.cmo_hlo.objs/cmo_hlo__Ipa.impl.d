lib/hlo/ipa.ml: Array Cmo_il Cmo_naim Hashtbl Int64 List Option
