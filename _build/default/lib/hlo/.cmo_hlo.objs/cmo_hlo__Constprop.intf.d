lib/hlo/constprop.mli: Cmo_il
