lib/hlo/licm.ml: Cmo_il Hashtbl List Liveness Loopinfo Option
