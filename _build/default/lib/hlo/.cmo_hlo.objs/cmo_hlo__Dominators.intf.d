lib/hlo/dominators.mli: Cmo_il
