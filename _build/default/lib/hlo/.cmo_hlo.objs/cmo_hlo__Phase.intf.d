lib/hlo/phase.mli: Cmo_il Cmo_naim
