lib/hlo/inline.mli: Cmo_il Cmo_naim
