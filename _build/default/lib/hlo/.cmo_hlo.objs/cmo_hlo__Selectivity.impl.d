lib/hlo/selectivity.ml: Cmo_il Float Format Hashtbl List
