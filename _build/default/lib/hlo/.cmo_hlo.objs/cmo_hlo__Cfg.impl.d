lib/hlo/cfg.ml: Cmo_il Hashtbl List
