lib/hlo/valnum.mli: Cmo_il
