lib/hlo/copyprop.mli: Cmo_il
