(** Control-flow graph cleanup.

    The janitor pass run between transformations: every optimization
    is free to leave unreachable blocks, constant branches and trivial
    jump chains behind, and calls {!simplify} to tidy up.  All
    rewrites are semantics-preserving by construction.

    Profile annotations are maintained: merged blocks keep the head's
    frequency; a folded constant branch transfers the whole frequency
    to the surviving edge. *)

val remove_unreachable : Cmo_il.Func.t -> int
(** Delete blocks not reachable from the entry; returns how many were
    removed. *)

val fold_constant_branches : Cmo_il.Func.t -> int
(** Rewrite [Br] with an [Imm] condition (or identical targets) into
    [Jmp]; returns the number of branches folded. *)

val thread_jumps : Cmo_il.Func.t -> int
(** Retarget edges that point at empty forwarding blocks ([Jmp]-only)
    to their final destination; returns the number of retargets. *)

val merge_straightline : Cmo_il.Func.t -> int
(** Merge a block with its unique successor when that successor has no
    other predecessors (and is not the entry); returns merges done. *)

val simplify : Cmo_il.Func.t -> bool
(** Run all of the above to a fixed point; [true] if anything
    changed. *)
