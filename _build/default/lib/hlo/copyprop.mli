(** Block-local copy propagation.

    Within a basic block, after [d = r], later reads of [d] become
    reads of [r] until either side is redefined.  (Global copy
    propagation on non-SSA IL costs a full reaching-definitions
    analysis for little extra benefit once value numbering and
    constant propagation have run; the production HLO's cheap cleanup
    passes were similarly scoped.) *)

val run : Cmo_il.Func.t -> int
(** Number of operand rewrites performed. *)
