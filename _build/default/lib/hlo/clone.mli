(** Procedure cloning: specialize a callee for constant arguments at
    hot call sites.

    Cloning is HLO's answer for callees too large to inline: a hot
    call site passing immediates gets a private copy of the callee
    with those parameters pinned (entry-block [Move]s that constant
    propagation then folds, typically deleting whole branches).
    Clones are module-local functions named ["callee$cN"].

    Clones are shared: two sites passing the same constants for the
    same parameters retarget to one clone.  Recursive callees are not
    cloned (the clone would still call the original, re-splitting the
    profile for no benefit). *)

type config = {
  hot_count : float;  (** Minimum call-site count to consider. *)
  min_callee_size : int;
      (** Below this the inliner will handle the site anyway. *)
  max_callee_size : int;
  max_clones : int;  (** Program-wide budget. *)
}

val default_config : config

val run : Cmo_naim.Loader.t -> Cmo_il.Callgraph.t -> config -> int
(** Returns the number of clones created.  Call-graph sizes and cycle
    information are read from [cg] (built before this pass); new
    clones are registered with the loader but not added to [cg] —
    downstream passes treat them as ordinary functions discovered via
    the loader. *)
