(** Full unrolling of small constant-trip loops — one of the HLO
    "locality and schedule-enhancing loop transformations" of the
    paper's section 3.

    Recognized shape (what the frontend emits for a counted [while]
    after constant propagation has normalized the initializer):

    {v
      P:  ... ; i = <constant>        (unique out-of-loop predecessor)
      H:  c = i < <constant-bound>    (header; condition may be < or <=)
          br c, B, X
      B:  <body>                      (single block; may call/store)
          i = i + 1
          jmp H
    v}

    The loop is replaced by [trip] straight-line copies of the header
    and body instructions followed by one final copy of the header
    instructions (the evaluation that would have exited), preserving
    side-effect counts exactly; the register state after the unrolled
    sequence equals the state after the original loop, including the
    induction variable's final value, so no renaming is needed.
    Duplicated call instructions receive fresh call-site ids.

    Bails out unless [trip <= max_trip] and the duplicated instruction
    count stays within [budget]; later constant propagation then folds
    the induction variable through every copy. *)

val run : ?max_trip:int -> ?budget:int -> Cmo_il.Func.t -> int
(** Returns the number of loops unrolled.  Defaults: [max_trip] 16,
    [budget] 96 duplicated instructions. *)
