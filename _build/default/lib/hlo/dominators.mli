(** Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

    Derived data in the paper's sense: computed on demand from the
    CFG, never updated incrementally, discarded freely (section 4.1). *)

type t

val compute : Cmo_il.Func.t -> t
(** Considers only blocks reachable from the entry. *)

val idom : t -> Cmo_il.Instr.label -> Cmo_il.Instr.label option
(** Immediate dominator; [None] for the entry block or an unreachable
    label. *)

val dominates : t -> Cmo_il.Instr.label -> Cmo_il.Instr.label -> bool
(** [dominates t a b] — every path from entry to [b] passes through
    [a].  Reflexive.  False for unreachable labels. *)

val reverse_postorder : t -> Cmo_il.Instr.label list
(** Reachable labels in reverse postorder (the iteration order of
    forward dataflow). *)

val modeled_bytes : t -> int
(** Modeled footprint for the Derived memory category. *)
