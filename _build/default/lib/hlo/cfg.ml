module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

let remove_unreachable (f : Func.t) =
  let reachable = Func.reachable f in
  let before = List.length f.Func.blocks in
  f.Func.blocks <-
    List.filter (fun (b : Func.block) -> Hashtbl.mem reachable b.Func.label) f.Func.blocks;
  before - List.length f.Func.blocks

let fold_constant_branches (f : Func.t) =
  let folded = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      match b.Func.term with
      | Instr.Br { cond = Instr.Imm c; ifso; ifnot } ->
        b.Func.term <- Instr.Jmp (if c <> 0L then ifso else ifnot);
        incr folded
      | Instr.Br { ifso; ifnot; _ } when ifso = ifnot ->
        b.Func.term <- Instr.Jmp ifso;
        incr folded
      | Instr.Br _ | Instr.Jmp _ | Instr.Ret _ -> ())
    f.Func.blocks;
  !folded

let thread_jumps (f : Func.t) =
  (* final_target follows chains of empty Jmp-only blocks, with a
     visited set to stop at cycles (e.g. an empty infinite loop). *)
  let by_label = Hashtbl.create 16 in
  List.iter (fun (b : Func.block) -> Hashtbl.replace by_label b.Func.label b) f.Func.blocks;
  let rec final_target seen label =
    if List.mem label seen then label
    else
      match Hashtbl.find_opt by_label label with
      | Some { Func.instrs = []; term = Instr.Jmp next; _ } ->
        final_target (label :: seen) next
      | Some _ | None -> label
  in
  let threaded = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      let retarget l =
        let l' = final_target [ b.Func.label ] l in
        if l' <> l then incr threaded;
        l'
      in
      b.Func.term <- Instr.retarget retarget b.Func.term)
    f.Func.blocks;
  (* The entry label itself may be a forwarder. *)
  let entry' = final_target [] f.Func.entry in
  if entry' <> f.Func.entry then begin
    f.Func.entry <- entry';
    incr threaded
  end;
  !threaded

let merge_straightline (f : Func.t) =
  let merged = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = Func.predecessors f in
    let by_label = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) -> Hashtbl.replace by_label b.Func.label b)
      f.Func.blocks;
    List.iter
      (fun (b : Func.block) ->
        if Hashtbl.mem by_label b.Func.label then
          match b.Func.term with
          | Instr.Jmp succ_label
            when succ_label <> b.Func.label
                 && succ_label <> f.Func.entry
                 && Hashtbl.find_opt preds succ_label = Some [ b.Func.label ] -> (
            match Hashtbl.find_opt by_label succ_label with
            | Some succ ->
              b.Func.instrs <- b.Func.instrs @ succ.Func.instrs;
              b.Func.term <- succ.Func.term;
              if succ.Func.freq > b.Func.freq then b.Func.freq <- succ.Func.freq;
              Hashtbl.remove by_label succ_label;
              f.Func.blocks <-
                List.filter
                  (fun (x : Func.block) -> x.Func.label <> succ_label)
                  f.Func.blocks;
              incr merged;
              changed := true
            | None -> ())
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret _ -> ())
      f.Func.blocks
  done;
  !merged

let simplify (f : Func.t) =
  let any = ref false in
  let changed = ref true in
  while !changed do
    let n =
      fold_constant_branches f + thread_jumps f + remove_unreachable f
      + merge_straightline f
    in
    changed := n > 0;
    if n > 0 then any := true
  done;
  !any
