module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

let def_counts (f : Func.t) =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun i ->
          Option.iter
            (fun d ->
              Hashtbl.replace counts d
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
            (Instr.def i))
        b.Func.instrs)
    f.Func.blocks;
  counts

(* Registers defined anywhere inside the loop body. *)
let defs_in_loop (f : Func.t) in_loop =
  let defs = Hashtbl.create 32 in
  List.iter
    (fun (b : Func.block) ->
      if Hashtbl.mem in_loop b.Func.label then
        List.iter
          (fun i -> Option.iter (fun d -> Hashtbl.replace defs d ()) (Instr.def i))
          b.Func.instrs)
    f.Func.blocks;
  defs

let process_loop (f : Func.t) (loop : Loopinfo.loop) =
  let in_loop = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace in_loop l ()) loop.Loopinfo.body;
  let loop_blocks =
    List.filter
      (fun (b : Func.block) -> Hashtbl.mem in_loop b.Func.label)
      f.Func.blocks
  in
  let has_clobber =
    List.exists
      (fun (b : Func.block) ->
        List.exists
          (fun i ->
            match i with
            | Instr.Store _ | Instr.Call _ -> true
            | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
            | Instr.Probe _ -> false)
          b.Func.instrs)
      loop_blocks
  in
  let live = Liveness.compute f in
  (* Exit targets: out-of-loop successors of loop blocks. *)
  let exit_targets =
    List.concat_map
      (fun (b : Func.block) ->
        List.filter (fun s -> not (Hashtbl.mem in_loop s)) (Instr.targets b.Func.term))
      loop_blocks
  in
  let live_at_exit r =
    List.exists (fun t -> List.mem r (Liveness.live_in live t)) exit_targets
  in
  let counts = def_counts f in
  let loop_defs = defs_in_loop f in_loop in
  let hoisted_regs = Hashtbl.create 8 in
  let hoisted_rev = ref [] in
  let operand_invariant = function
    | Instr.Imm _ -> true
    | Instr.Reg r ->
      (not (Hashtbl.mem loop_defs r)) || Hashtbl.mem hoisted_regs r
  in
  let hoistable i =
    match Instr.def i with
    | None -> false
    | Some d ->
      Hashtbl.find_opt counts d = Some 1
      && (not (live_at_exit d))
      && (not (Hashtbl.mem hoisted_regs d))
      && List.for_all operand_invariant
           (match i with
           | Instr.Move (_, a) | Instr.Unop (_, _, a) -> [ a ]
           | Instr.Binop (_, _, a, b) -> [ a; b ]
           | Instr.Load (_, { Instr.index; _ }) -> [ index ]
           | Instr.Store _ | Instr.Call _ | Instr.Probe _ -> [])
      &&
      (match i with
      | Instr.Move _ | Instr.Unop _ | Instr.Binop _ -> true
      | Instr.Load _ -> not has_clobber
      | Instr.Store _ | Instr.Call _ | Instr.Probe _ -> false)
  in
  (* Fixpoint discovery: hoisting one definition can make its users
     hoistable. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Func.block) ->
        b.Func.instrs <-
          List.filter
            (fun i ->
              if hoistable i then begin
                hoisted_rev := i :: !hoisted_rev;
                Hashtbl.replace hoisted_regs (Option.get (Instr.def i)) ();
                changed := true;
                false
              end
              else true)
            b.Func.instrs)
      loop_blocks
  done;
  let hoisted = List.rev !hoisted_rev in
  if hoisted <> [] then begin
    (* Build or reuse a preheader: a fresh block holding the hoisted
       code, jumped to by all out-of-loop predecessors of the header. *)
    let header = loop.Loopinfo.header in
    let pre = Func.add_block f hoisted (Instr.Jmp header) in
    List.iter
      (fun (b : Func.block) ->
        if (not (Hashtbl.mem in_loop b.Func.label)) && b.Func.label <> pre.Func.label
        then
          b.Func.term <-
            Instr.retarget
              (fun l -> if l = header then pre.Func.label else l)
              b.Func.term)
      f.Func.blocks;
    if f.Func.entry = header then f.Func.entry <- pre.Func.label;
    (* The preheader runs as often as the loop is entered; the
       header frequency is an upper bound used only for layout. *)
    (match Func.find_block_opt f header with
    | Some h -> pre.Func.freq <- h.Func.freq
    | None -> ())
  end;
  List.length hoisted

let run (f : Func.t) =
  (* One loop at a time, deepest first, recomputing loop structure
     after each hoist: a freshly-made inner preheader is part of the
     enclosing loop, and working from a stale body set could classify
     its definitions as loop-invariant for the outer loop. *)
  let total = ref 0 in
  let processed = Hashtbl.create 8 in
  let continue_ = ref true in
  while !continue_ do
    let candidates =
      Loopinfo.loops (Loopinfo.compute f)
      |> List.filter (fun l -> not (Hashtbl.mem processed l.Loopinfo.header))
      |> List.sort (fun a b ->
             match compare b.Loopinfo.depth a.Loopinfo.depth with
             | 0 -> compare a.Loopinfo.header b.Loopinfo.header
             | c -> c)
    in
    match candidates with
    | [] -> continue_ := false
    | loop :: _ ->
      Hashtbl.replace processed loop.Loopinfo.header ();
      total := !total + process_loop f loop
  done;
  !total
