(** Superlocal value numbering: the HLO's common-subexpression
    elimination.

    Pure computations with identical value numbers collapse to a
    single computation plus [Move]s.  The scope is the extended basic
    block: a block with a unique predecessor inherits (a copy of) the
    predecessor's value table, so an expression computed before a
    branch is available in both arms; join points start fresh.
    Commutative operations are canonicalized so [a+b] and [b+a]
    match.  Redundant loads of the same address are also collapsed.

    Memory disambiguation (one of the HLO transformations the paper's
    section 3 lists) is exact here: MiniC has no address-of, so
    distinct globals never alias — a [Store] to global [g] only
    invalidates loads of [g] (any index), while a [Call] invalidates
    every global (the callee may store anywhere).

    Redundant branch elimination (also on the paper's section-3 list)
    falls out of the same tables: within an extended basic block, the
    fall-through arm of a branch pins the condition's value number to
    the constant 0 and the taken arm records it as non-zero, so a
    dominating branch's condition re-tested downstream folds to an
    unconditional jump (cleaned up by {!Cfg.simplify}). *)

val run : Cmo_il.Func.t -> int
(** Number of instructions replaced by [Move]s. *)
