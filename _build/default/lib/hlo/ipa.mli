(** Interprocedural analysis and optimization over the CMO set.

    Implements the paper's "limited amount of interprocedural analysis
    across all the modules being optimized" (section 2):

    - {b Constant parameters}: when every call site in the program
      passes the same immediate for a parameter and the function has
      no callers outside the analyzed set, the constant is funneled
      into the entry block as a [Move], which intraprocedural constant
      propagation then exploits.
    - {b Constant globals}: a global that is never stored anywhere —
      MiniC has no address-of, so the store scan is exact — is a
      constant; loads at immediate indices become immediates.
    - {b Dead functions}: functions unreachable from the entry point
      and from externally-callable functions are deleted (typically
      routines fully swallowed by the inliner).

    All three follow the paper's "read everything cheaply" discipline
    (section 5: module-private information "can only be determined if
    all routines that can access a variable are examined"): the scan
    acquires one routine at a time through the loader and releases it
    immediately, so the memory high-water mark stays at one expanded
    pool plus accumulators.

    When only part of the program is in the CMO set (selectivity), the
    driver describes the rest through [context]: which functions the
    outside may call and which globals it may store to. *)

type context = {
  externally_called : string -> bool;
      (** The function may be invoked by code outside the analyzed
          set (or by the runtime); its parameters are unknowable. *)
  externally_stored : string -> bool;
      (** The global may be written by code outside the analyzed set. *)
  entry : string option;
      (** Name of the program entry within the set, normally
          ["main"]. *)
  keep_exported : bool;
      (** Treat every [Exported] function as externally callable.
          This is the shipped-application reality the paper operates
          in: an ISV binary's exported entry points stay callable, so
          only module-private ([static]) routines — typically ones
          fully swallowed by the inliner — can be proved dead or have
          their parameters pinned. *)
}

val whole_program : context
(** CMO over the full program as shipped: entry ["main"],
    [keep_exported = true]. *)

val closed_world : context
(** [whole_program] with [keep_exported = false]: nothing outside the
    set can call in, so unreachable exported functions are dead too.
    The right context for a standalone executable built entirely from
    the CMO set. *)

type stats = {
  const_params : int;  (** Parameters pinned to constants. *)
  const_global_loads : int;  (** Loads folded to immediates. *)
  dead_functions : string list;  (** Removed functions, in order. *)
}

val run : Cmo_naim.Loader.t -> context -> stats
