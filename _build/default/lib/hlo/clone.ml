module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Callgraph = Cmo_il.Callgraph
module Intrinsics = Cmo_il.Intrinsics
module Loader = Cmo_naim.Loader

type config = {
  hot_count : float;
  min_callee_size : int;
  max_callee_size : int;
  max_clones : int;
}

let default_config =
  {
    hot_count = 1000.0;
    min_callee_size = 12;
    max_callee_size = 400;
    max_clones = 64;
  }

(* Constant-argument pattern of a call: (param index, value) list. *)
let const_pattern (c : Instr.call) =
  List.filteri (fun _ _ -> true) c.Instr.args
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (fun (i, a) ->
         match a with Instr.Imm v -> Some (i, v) | Instr.Reg _ -> None)

let clone_name callee n = Printf.sprintf "%s$c%d" callee n

let make_clone (callee : Func.t) ~name pattern =
  let clone = Func.copy callee in
  let clone =
    {
      clone with
      Func.name;
      linkage = Func.Local;
    }
  in
  (* Renumber call sites: the clone's sites must be unique within the
     clone only, so the copies are fine; pin parameters at entry. *)
  let entry = Func.entry_block clone in
  let moves = List.map (fun (i, v) -> Instr.Move (i, Instr.Imm v)) pattern in
  entry.Func.instrs <- moves @ entry.Func.instrs;
  clone

let run loader cg config =
  let clones_made = ref 0 in
  let next_id = ref 0 in
  (* (callee, pattern) -> clone name *)
  let cache = Hashtbl.create 16 in
  List.iter
    (fun caller_name ->
      if !clones_made < config.max_clones then
        Loader.with_func loader caller_name (fun caller ->
            let changed = ref false in
            List.iter
              (fun (b : Func.block) ->
                b.Func.instrs <-
                  List.map
                    (fun i ->
                      match i with
                      | Instr.Call c
                        when !clones_made < config.max_clones
                             && c.Instr.call_count >= config.hot_count
                             && (not (Intrinsics.is_intrinsic c.Instr.callee))
                             && c.Instr.callee <> caller_name -> (
                        let pattern = const_pattern c in
                        match (pattern, Callgraph.node cg c.Instr.callee) with
                        | [], _ | _, None -> i
                        | pattern, Some node
                          when node.Callgraph.instr_count >= config.min_callee_size
                               && node.Callgraph.instr_count <= config.max_callee_size
                               && not (Callgraph.in_cycle cg c.Instr.callee) ->
                          let key = (c.Instr.callee, pattern) in
                          let name =
                            match Hashtbl.find_opt cache key with
                            | Some name -> name
                            | None ->
                              let name = clone_name c.Instr.callee !next_id in
                              incr next_id;
                              let callee = Loader.acquire loader c.Instr.callee in
                              let clone = make_clone callee ~name pattern in
                              let callee_module =
                                Loader.module_of_func loader c.Instr.callee
                              in
                              Loader.release loader c.Instr.callee;
                              Loader.add_func loader ~module_name:callee_module
                                clone;
                              Hashtbl.replace cache key name;
                              incr clones_made;
                              name
                          in
                          changed := true;
                          Instr.Call { c with Instr.callee = name }
                        | _, Some _ -> i)
                      | other -> other)
                    b.Func.instrs)
              caller.Func.blocks;
            if !changed then Loader.update loader caller))
    (Loader.func_names loader);
  !clones_made
