(** Backward liveness dataflow over virtual registers.

    Per-block live-in/live-out sets, used by dead-code elimination in
    HLO and by spill-cost estimation in the register allocator.
    Derived data: recomputed per use. *)

type t

val compute : Cmo_il.Func.t -> t

val live_out : t -> Cmo_il.Instr.label -> Cmo_il.Instr.reg list
(** Registers live on exit from the block, ascending. *)

val live_in : t -> Cmo_il.Instr.label -> Cmo_il.Instr.reg list

val live_out_mem : t -> Cmo_il.Instr.label -> Cmo_il.Instr.reg -> bool

val modeled_bytes : t -> int
