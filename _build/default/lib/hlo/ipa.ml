module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Intrinsics = Cmo_il.Intrinsics
module Loader = Cmo_naim.Loader

type context = {
  externally_called : string -> bool;
  externally_stored : string -> bool;
  entry : string option;
  keep_exported : bool;
}

let whole_program =
  {
    externally_called = (fun _ -> false);
    externally_stored = (fun _ -> false);
    entry = Some "main";
    keep_exported = true;
  }

let closed_world = { whole_program with keep_exported = false }

type stats = {
  const_params : int;
  const_global_loads : int;
  dead_functions : string list;
}

type arg_lattice = Top | Const of int64 | Varying

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const x, Const y when Int64.equal x y -> Const x
  | _ -> Varying

(* One cheap pass over every routine: callee argument lattices, the
   set of stored globals, and the call-graph edges for reachability. *)
type summary = {
  args : (string, arg_lattice array) Hashtbl.t;
  stored : (string, unit) Hashtbl.t;
  callees : (string, string list) Hashtbl.t;
  exported : (string, unit) Hashtbl.t;
}

let scan loader =
  let s =
    {
      args = Hashtbl.create 256;
      stored = Hashtbl.create 64;
      callees = Hashtbl.create 256;
      exported = Hashtbl.create 256;
    }
  in
  List.iter
    (fun fname ->
      Loader.with_func loader fname (fun f ->
          if f.Func.linkage = Func.Exported then
            Hashtbl.replace s.exported fname ();
          let callees = ref [] in
          List.iter
            (fun (b : Func.block) ->
              List.iter
                (fun i ->
                  match i with
                  | Instr.Store ({ Instr.base; _ }, _) ->
                    Hashtbl.replace s.stored base ()
                  | Instr.Call { callee; args; _ }
                    when not (Intrinsics.is_intrinsic callee) ->
                    if not (List.mem callee !callees) then
                      callees := callee :: !callees;
                    let lat =
                      match Hashtbl.find_opt s.args callee with
                      | Some lat -> lat
                      | None ->
                        let lat = Array.make (List.length args) Top in
                        Hashtbl.replace s.args callee lat;
                        lat
                    in
                    List.iteri
                      (fun i a ->
                        if i < Array.length lat then
                          lat.(i) <-
                            meet lat.(i)
                              (match a with
                              | Instr.Imm c -> Const c
                              | Instr.Reg _ -> Varying))
                      args
                  | Instr.Call _ | Instr.Move _ | Instr.Unop _ | Instr.Binop _
                  | Instr.Load _ | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks;
          Hashtbl.replace s.callees fname (List.rev !callees)))
    (Loader.func_names loader);
  s

(* Whether outside code could call [fname] under this context. *)
let callable_from_outside ctx summary fname =
  ctx.externally_called fname
  || (ctx.keep_exported && Hashtbl.mem summary.exported fname)

let apply_const_params loader ctx summary =
  let count = ref 0 in
  List.iter
    (fun fname ->
      let is_entry = ctx.entry = Some fname in
      if (not is_entry) && not (callable_from_outside ctx summary fname) then
        match Hashtbl.find_opt summary.args fname with
        | None -> ()  (* no callers at all: dead, handled below *)
        | Some lat ->
          let pins =
            Array.to_list lat
            |> List.mapi (fun i v -> (i, v))
            |> List.filter_map (fun (i, v) ->
                   match v with Const c -> Some (i, c) | Top | Varying -> None)
          in
          if pins <> [] then
            Loader.with_func loader fname (fun f ->
                if List.for_all (fun (i, _) -> i < f.Func.arity) pins then begin
                  let entry = Func.entry_block f in
                  let moves =
                    List.map (fun (i, c) -> Instr.Move (i, Instr.Imm c)) pins
                  in
                  entry.Func.instrs <- moves @ entry.Func.instrs;
                  count := !count + List.length pins;
                  Loader.update loader f
                end))
    (Loader.func_names loader);
  !count

let apply_const_globals loader ctx summary =
  (* value table for never-stored globals *)
  let values = Hashtbl.create 64 in
  List.iter
    (fun (g : Ilmod.global) ->
      if
        (not (Hashtbl.mem summary.stored g.Ilmod.gname))
        && not (ctx.externally_stored g.Ilmod.gname)
      then Hashtbl.replace values g.Ilmod.gname g)
    (Loader.all_globals loader);
  let folded = ref 0 in
  if Hashtbl.length values > 0 then
    List.iter
      (fun fname ->
        Loader.with_func loader fname (fun f ->
            let changed = ref false in
            List.iter
              (fun (b : Func.block) ->
                b.Func.instrs <-
                  List.map
                    (fun i ->
                      match i with
                      | Instr.Load (d, { Instr.base; index = Instr.Imm k }) -> (
                        match Hashtbl.find_opt values base with
                        | Some g
                          when Int64.to_int k >= 0
                               && Int64.to_int k < g.Ilmod.size ->
                          let k = Int64.to_int k in
                          let v =
                            if k < Array.length g.Ilmod.init then
                              g.Ilmod.init.(k)
                            else 0L
                          in
                          incr folded;
                          changed := true;
                          Instr.Move (d, Instr.Imm v)
                        | Some _ | None -> i)
                      | other -> other)
                    b.Func.instrs)
              f.Func.blocks;
            if !changed then Loader.update loader f))
      (Loader.func_names loader);
  !folded

let remove_dead_functions loader ctx summary =
  let reachable = Hashtbl.create 256 in
  let rec visit fname =
    if not (Hashtbl.mem reachable fname) then begin
      Hashtbl.replace reachable fname ();
      List.iter visit
        (Option.value ~default:[] (Hashtbl.find_opt summary.callees fname))
    end
  in
  let names = Loader.func_names loader in
  (match ctx.entry with
  | Some e when List.mem e names -> visit e
  | Some _ | None -> ());
  List.iter
    (fun n -> if callable_from_outside ctx summary n then visit n)
    names;
  (* With no entry and nothing externally callable, removal would be
     vacuous-total; keep everything in that degenerate case. *)
  if Hashtbl.length reachable = 0 then []
  else begin
    let dead = List.filter (fun n -> not (Hashtbl.mem reachable n)) names in
    List.iter (fun n -> Loader.remove_func loader n) dead;
    dead
  end

let run loader ctx =
  let summary = scan loader in
  let const_params = apply_const_params loader ctx summary in
  let const_global_loads = apply_const_globals loader ctx summary in
  let dead_functions = remove_dead_functions loader ctx summary in
  { const_params; const_global_loads; dead_functions }
