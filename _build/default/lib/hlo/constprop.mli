(** Intraprocedural constant propagation and folding.

    A forward iterative dataflow over the lattice
    [Top > Const c > Bottom] per register, followed by a rewrite:
    operands with known constant values become immediates, pure
    instructions with all-constant inputs fold to [Move]s, and branch
    conditions become immediates (which {!Cfg.simplify} then folds
    into unconditional jumps, deleting the dead arm).

    The propagation is sparse-conditional: a branch whose condition
    has a known constant value feeds only its taken arm, so a join
    between a feasible and an infeasible path keeps the feasible
    path's constants instead of widening to [Bottom].

    Loads and call results are [Bottom]; interprocedural constants are
    the business of {!Ipa}, which funnels them in as entry [Move]s
    that this pass then propagates. *)

val run : Cmo_il.Func.t -> int
(** Returns the number of operands and instructions rewritten;
    0 means the function was left untouched. *)
