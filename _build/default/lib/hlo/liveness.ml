module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

(* Register sets as Bytes bitmaps: next_reg is typically small and
   dense, and bitmaps make the transfer function cheap. *)
module Bitset = struct
  type t = Bytes.t

  let create n = Bytes.make ((n / 8) + 1) '\000'

  let mem t r = Char.code (Bytes.get t (r / 8)) land (1 lsl (r mod 8)) <> 0

  let add t r =
    Bytes.set t (r / 8)
      (Char.chr (Char.code (Bytes.get t (r / 8)) lor (1 lsl (r mod 8))))

  let remove t r =
    Bytes.set t (r / 8)
      (Char.chr (Char.code (Bytes.get t (r / 8)) land lnot (1 lsl (r mod 8)) land 0xff))

  let union_into ~into src =
    let changed = ref false in
    for i = 0 to Bytes.length into - 1 do
      let a = Char.code (Bytes.get into i) and b = Char.code (Bytes.get src i) in
      let c = a lor b in
      if c <> a then begin
        Bytes.set into i (Char.chr c);
        changed := true
      end
    done;
    !changed

  let copy = Bytes.copy

  let elements t n =
    let out = ref [] in
    for r = n - 1 downto 0 do
      if mem t r then out := r :: !out
    done;
    !out
end

type t = {
  nregs : int;
  live_in : (Instr.label, Bitset.t) Hashtbl.t;
  live_out : (Instr.label, Bitset.t) Hashtbl.t;
}

let block_transfer nregs (b : Func.block) live_out =
  (* live_in = (live_out - defs) + uses, walking instructions
     backward. *)
  let live = Bitset.copy live_out in
  List.iter (fun r -> Bitset.add live r) (Instr.term_uses b.Func.term);
  List.iter
    (fun i ->
      Option.iter (fun d -> Bitset.remove live d) (Instr.def i);
      List.iter (fun u -> Bitset.add live u) (Instr.uses i))
    (List.rev b.Func.instrs);
  ignore nregs;
  live

let compute (f : Func.t) =
  let nregs = f.Func.next_reg in
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      Hashtbl.replace live_in b.Func.label (Bitset.create nregs);
      Hashtbl.replace live_out b.Func.label (Bitset.create nregs))
    f.Func.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Backward: iterate blocks in reverse layout order. *)
    List.iter
      (fun (b : Func.block) ->
        let out = Hashtbl.find live_out b.Func.label in
        List.iter
          (fun succ ->
            match Hashtbl.find_opt live_in succ with
            | Some succ_in -> if Bitset.union_into ~into:out succ_in then changed := true
            | None -> ())
          (Instr.targets b.Func.term);
        let new_in = block_transfer nregs b out in
        let old_in = Hashtbl.find live_in b.Func.label in
        if Bitset.union_into ~into:old_in new_in then changed := true)
      (List.rev f.Func.blocks)
  done;
  { nregs; live_in; live_out }

let live_out t label =
  match Hashtbl.find_opt t.live_out label with
  | Some s -> Bitset.elements s t.nregs
  | None -> []

let live_in t label =
  match Hashtbl.find_opt t.live_in label with
  | Some s -> Bitset.elements s t.nregs
  | None -> []

let live_out_mem t label r =
  match Hashtbl.find_opt t.live_out label with
  | Some s -> r < t.nregs && Bitset.mem s r
  | None -> false

let modeled_bytes t = 64 + (2 * Hashtbl.length t.live_in * ((t.nregs / 8) + 16))
