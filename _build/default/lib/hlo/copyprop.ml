module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

let run (f : Func.t) =
  let rewrites = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      (* copy_of.(d) = Some s when d currently equals register s. *)
      let copy_of = Hashtbl.create 8 in
      let subst op =
        match op with
        | Instr.Reg r -> (
          match Hashtbl.find_opt copy_of r with
          | Some s ->
            incr rewrites;
            Instr.Reg s
          | None -> op)
        | Instr.Imm _ -> op
      in
      let kill d =
        Hashtbl.remove copy_of d;
        (* Any copy pointing at d is now stale. *)
        let stale =
          Hashtbl.fold (fun k s acc -> if s = d then k :: acc else acc) copy_of []
        in
        List.iter (Hashtbl.remove copy_of) stale
      in
      b.Func.instrs <-
        List.map
          (fun i ->
            let i = Instr.map_operands subst i in
            (match Instr.def i with Some d -> kill d | None -> ());
            (match i with
            | Instr.Move (d, Instr.Reg s) when d <> s ->
              Hashtbl.replace copy_of d s
            | _ -> ());
            i)
          b.Func.instrs;
      b.Func.term <- Instr.map_term_operands subst b.Func.term)
    f.Func.blocks;
  !rewrites
