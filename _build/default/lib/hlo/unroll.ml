module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

type candidate = {
  header : Func.block;
  body : Func.block;
  exit_label : Instr.label;
  ivar : Instr.reg;
  trip : int;
}

(* The last definition of [r] in a block, as a constant if it is a
   plain [Move r, Imm c]. *)
let last_const_def_of (b : Func.block) r =
  List.fold_left
    (fun acc i ->
      match Instr.def i with
      | Some d when d = r -> (
        match i with Instr.Move (_, Instr.Imm c) -> Some c | _ -> None)
      | Some _ | None -> acc)
    None b.Func.instrs

let defs_of_reg_in (b : Func.block) r =
  List.length
    (List.filter (fun i -> Instr.def i = Some r) b.Func.instrs)

let recognize (f : Func.t) (loop : Loopinfo.loop) preds =
  match loop.Loopinfo.body with
  | [ l1; l2 ] -> (
    let header_label = loop.Loopinfo.header in
    let body_label = if l1 = header_label then l2 else l1 in
    match (Func.find_block_opt f header_label, Func.find_block_opt f body_label) with
    | Some header, Some body -> (
      (* Header: ends [br c, body, exit]; c defined by the header's
         last instruction as [i < n] or [i <= n]. *)
      match (header.Func.term, List.rev header.Func.instrs) with
      | ( Instr.Br { cond = Instr.Reg c; ifso; ifnot },
          Instr.Binop (((Instr.Lt | Instr.Le) as op), c', Instr.Reg ivar, Instr.Imm bound)
          :: _ )
        when c = c' && ifso = body_label && ifnot <> header_label
             && ifnot <> body_label -> (
        let exit_label = ifnot in
        (* Body: single straight-line block jumping back, across which
           the induction variable advances by exactly +1.  The check
           is an abstract evaluation tracking each register's value
           relative to [ivar] at body entry, which tolerates the
           temp-and-move shape the frontend lowers [i = i + 1] to. *)
        let increments =
          match body.Func.term with
          | Instr.Jmp back when back = header_label ->
            let rel : (Instr.reg, int) Hashtbl.t = Hashtbl.create 8 in
            Hashtbl.replace rel ivar 0;
            List.iter
              (fun i ->
                let value_of = function
                  | Instr.Reg r -> Hashtbl.find_opt rel r
                  | Instr.Imm _ -> None
                in
                let new_value =
                  match i with
                  | Instr.Move (_, a) -> value_of a
                  | Instr.Binop (Instr.Add, _, a, Instr.Imm k) ->
                    Option.map (fun n -> n + Int64.to_int k) (value_of a)
                  | Instr.Binop (Instr.Add, _, Instr.Imm k, a) ->
                    Option.map (fun n -> n + Int64.to_int k) (value_of a)
                  | Instr.Binop (Instr.Sub, _, a, Instr.Imm k) ->
                    Option.map (fun n -> n - Int64.to_int k) (value_of a)
                  | _ -> None
                in
                match Instr.def i with
                | Some d -> (
                  match new_value with
                  | Some v -> Hashtbl.replace rel d v
                  | None -> Hashtbl.remove rel d)
                | None -> ())
              body.Func.instrs;
            Hashtbl.find_opt rel ivar = Some 1
          | Instr.Jmp _ | Instr.Br _ | Instr.Ret _ -> false
        in
        if (not increments) || defs_of_reg_in header ivar > 0 then None
        else begin
          (* Initial value: the unique out-of-loop predecessor of the
             header must end with a constant definition of i. *)
          let outside_preds =
            List.filter
              (fun p -> p <> body_label)
              (Option.value ~default:[] (Hashtbl.find_opt preds header_label))
          in
          match outside_preds with
          | [ p ] -> (
            match Func.find_block_opt f p with
            | Some pre -> (
              match last_const_def_of pre ivar with
              | Some init ->
                let bound = Int64.to_int bound and init = Int64.to_int init in
                let trip =
                  match op with
                  | Instr.Lt -> max 0 (bound - init)
                  | Instr.Le -> max 0 (bound - init + 1)
                  | _ -> 0
                in
                Some { header; body; exit_label; ivar; trip }
              | None -> None)
            | None -> None)
          | _ -> None
        end)
      | _ -> None)
    | _ -> None)
  | _ -> None

let fresh_sites f instrs =
  List.map
    (fun i ->
      match i with
      | Instr.Call c -> Instr.Call { c with Instr.site = Func.new_site f }
      | other -> other)
    instrs

let apply f cand =
  (* Build [trip] copies of (header; body) followed by one final
     header copy.  The original header and body instructions are used
     verbatim for the first copy (their call-site ids stay); all later
     copies get fresh call-site ids to keep ids unique. *)
  let segments = ref [] in
  for k = 1 to cand.trip do
    let h =
      if k = 1 then cand.header.Func.instrs
      else fresh_sites f cand.header.Func.instrs
    in
    let b =
      if k = 1 then cand.body.Func.instrs
      else fresh_sites f cand.body.Func.instrs
    in
    segments := b :: h :: !segments
  done;
  let final_header =
    if cand.trip = 0 then cand.header.Func.instrs
    else fresh_sites f cand.header.Func.instrs
  in
  let unrolled = List.concat (List.rev (final_header :: !segments)) in
  cand.header.Func.instrs <- unrolled;
  cand.header.Func.term <- Instr.Jmp cand.exit_label;
  (* The body block is now unreachable; Cfg.remove_unreachable will
     delete it, but detach its back edge now so loop info recomputed
     in the same pass does not see a stale loop. *)
  cand.body.Func.instrs <- [];
  cand.body.Func.term <- Instr.Jmp cand.exit_label

let run ?(max_trip = 16) ?(budget = 96) (f : Func.t) =
  let unrolled = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let loops = Loopinfo.loops (Loopinfo.compute f) in
    let preds = Func.predecessors f in
    let candidate =
      List.find_map
        (fun loop ->
          match recognize f loop preds with
          | Some cand
            when cand.trip <= max_trip
                 && cand.trip
                    * (List.length cand.header.Func.instrs
                      + List.length cand.body.Func.instrs)
                    <= budget ->
            Some cand
          | Some _ | None -> None)
        loops
    in
    match candidate with
    | Some cand ->
      apply f cand;
      ignore (Cfg.remove_unreachable f);
      incr unrolled
    | None -> continue_ := false
  done;
  !unrolled
