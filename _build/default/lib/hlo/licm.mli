(** Loop-invariant code motion.

    Hoists pure instructions (and loads, when the loop contains no
    store or call that could clobber memory) whose operands are
    defined entirely outside the loop into a preheader block.

    Because IL arithmetic cannot trap (division by zero yields 0),
    hoisting is speculation-safe; the remaining correctness conditions
    are about register clobbering in the non-SSA IL:
    - the destination has exactly one definition in the function, and
    - the destination is not live at any loop exit (so executing the
      definition on the zero-iteration path cannot change an
      observable value).

    Inner loops are processed first so invariants percolate outward
    one level per pass; the phase pipeline runs passes to a fixed
    point. *)

val run : Cmo_il.Func.t -> int
(** Number of instructions hoisted. *)
