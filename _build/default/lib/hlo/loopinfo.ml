module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

type loop = {
  header : Instr.label;
  body : Instr.label list;
  depth : int;
}

type t = {
  all : loop list;
  innermost : (Instr.label, loop) Hashtbl.t;
}

let compute (f : Func.t) =
  let doms = Dominators.compute f in
  let preds = Func.predecessors f in
  let reachable = Func.reachable f in
  (* Collect back edges grouped by header. *)
  let bodies = Hashtbl.create 8 in  (* header -> (label, unit) Hashtbl *)
  let headers_rev = ref [] in
  List.iter
    (fun (b : Func.block) ->
      if Hashtbl.mem reachable b.Func.label then
        List.iter
          (fun succ ->
            if Dominators.dominates doms succ b.Func.label then begin
              (* back edge b -> succ *)
              let body =
                match Hashtbl.find_opt bodies succ with
                | Some body -> body
                | None ->
                  let body = Hashtbl.create 8 in
                  Hashtbl.replace body succ ();
                  Hashtbl.replace bodies succ body;
                  headers_rev := succ :: !headers_rev;
                  body
              in
              (* Walk predecessors from the back-edge source up to the
                 header. *)
              let rec pull label =
                if not (Hashtbl.mem body label) then begin
                  Hashtbl.replace body label ();
                  List.iter pull
                    (Option.value ~default:[] (Hashtbl.find_opt preds label))
                end
              in
              pull b.Func.label
            end)
          (Instr.targets b.Func.term))
    f.Func.blocks;
  let headers = List.rev !headers_rev in
  (* Depth: number of loop bodies a header is contained in. *)
  let body_labels header =
    let body = Hashtbl.find bodies header in
    List.filter_map
      (fun (b : Func.block) ->
        if Hashtbl.mem body b.Func.label then Some b.Func.label else None)
      f.Func.blocks
  in
  let depth_of_header h =
    List.length
      (List.filter
         (fun h' -> h' <> h && Hashtbl.mem (Hashtbl.find bodies h') h)
         headers)
    + 1
  in
  let all =
    List.map
      (fun h -> { header = h; body = body_labels h; depth = depth_of_header h })
      headers
    |> List.sort (fun a b ->
           match compare a.depth b.depth with
           | 0 -> compare a.header b.header
           | c -> c)
  in
  let innermost = Hashtbl.create 16 in
  (* Process outermost to innermost so deeper loops overwrite. *)
  List.iter
    (fun loop ->
      List.iter (fun label -> Hashtbl.replace innermost label loop) loop.body)
    all;
  { all; innermost }

let loops t = t.all

let loop_of t label = Hashtbl.find_opt t.innermost label

let depth_of t label =
  match loop_of t label with Some l -> l.depth | None -> 0

let modeled_bytes t =
  List.fold_left (fun acc l -> acc + 32 + (16 * List.length l.body)) 64 t.all
