(** Dead-code elimination.

    Deletes pure instructions whose result is not used later in the
    block and not live out of it (liveness-based), plus calls whose
    unused results make them [dst = None] (the call itself stays — it
    may have side effects).  Run after constant propagation and value
    numbering, which strand exactly such instructions. *)

val run : Cmo_il.Func.t -> int
(** Number of instructions deleted. *)
