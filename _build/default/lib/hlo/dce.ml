module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

let run (f : Func.t) =
  let live = Liveness.compute f in
  let deleted = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      (* Walk backward with a running live set (registers read later
         in this block or live-out). *)
      let live_now = Hashtbl.create 16 in
      List.iter
        (fun r -> Hashtbl.replace live_now r ())
        (Liveness.live_out live b.Func.label);
      List.iter (fun r -> Hashtbl.replace live_now r ()) (Instr.term_uses b.Func.term);
      let keep_rev =
        List.fold_left
          (fun acc i ->
            let needed =
              match Instr.def i with
              | Some d -> Hashtbl.mem live_now d
              | None -> true
            in
            if Instr.is_pure i && not needed then begin
              incr deleted;
              acc
            end
            else begin
              let i =
                (* A call whose result is dead keeps its effects but
                   drops the definition. *)
                match i with
                | Instr.Call ({ dst = Some d; _ } as c)
                  when not (Hashtbl.mem live_now d) ->
                  Instr.Call { c with Instr.dst = None }
                | other -> other
              in
              Option.iter (fun d -> Hashtbl.remove live_now d) (Instr.def i);
              List.iter (fun u -> Hashtbl.replace live_now u ()) (Instr.uses i);
              i :: acc
            end)
          []
          (List.rev b.Func.instrs)
      in
      b.Func.instrs <- keep_rev)
    f.Func.blocks;
  !deleted
