module Instr = Cmo_il.Instr
module Func = Cmo_il.Func

type t = {
  entry : Instr.label;
  idoms : (Instr.label, Instr.label) Hashtbl.t;  (* entry maps to itself *)
  rpo : Instr.label list;
  rpo_index : (Instr.label, int) Hashtbl.t;
}

let compute_rpo (f : Func.t) =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      (match Func.find_block_opt f label with
      | Some b -> List.iter dfs (Instr.targets b.Func.term)
      | None -> ());
      order := label :: !order
    end
  in
  if f.Func.blocks <> [] then dfs f.Func.entry;
  !order

let compute (f : Func.t) =
  let rpo = compute_rpo f in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace rpo_index l i) rpo;
  let preds = Func.predecessors f in
  let idoms = Hashtbl.create 16 in
  Hashtbl.replace idoms f.Func.entry f.Func.entry;
  let rec intersect a b =
    if a = b then a
    else begin
      let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
      if ia > ib then intersect (Hashtbl.find idoms a) b
      else intersect a (Hashtbl.find idoms b)
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if label <> f.Func.entry then begin
          let ps =
            List.filter
              (fun p -> Hashtbl.mem rpo_index p && Hashtbl.mem idoms p)
              (Option.value ~default:[] (Hashtbl.find_opt preds label))
          in
          match ps with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idoms label <> Some new_idom then begin
              Hashtbl.replace idoms label new_idom;
              changed := true
            end
          end)
      rpo
  done;
  { entry = f.Func.entry; idoms; rpo; rpo_index }

let idom t label =
  if label = t.entry then None
  else Hashtbl.find_opt t.idoms label

let dominates t a b =
  if not (Hashtbl.mem t.rpo_index a && Hashtbl.mem t.rpo_index b) then false
  else begin
    let rec walk x = if x = a then true else if x = t.entry then false else walk (Hashtbl.find t.idoms x) in
    walk b
  end

let reverse_postorder t = t.rpo

let modeled_bytes t = 64 + (48 * List.length t.rpo)
