lib/naim/repository.mli:
