lib/naim/repository.ml: Buffer Option String Sys
