lib/naim/loader.ml: Cmo_il Cmo_support Fun Hashtbl List Logs Memstats Printf Repository
