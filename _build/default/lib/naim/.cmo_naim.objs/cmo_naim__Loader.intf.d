lib/naim/loader.mli: Cmo_il Memstats Repository
