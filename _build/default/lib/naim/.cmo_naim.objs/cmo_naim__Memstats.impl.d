lib/naim/memstats.ml: Array Format List Printf
