lib/naim/memstats.mli: Format
