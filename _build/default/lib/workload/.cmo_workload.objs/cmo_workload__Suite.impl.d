lib/workload/suite.ml: Genprog List
