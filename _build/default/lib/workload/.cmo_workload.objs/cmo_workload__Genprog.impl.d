lib/workload/genprog.ml: Array Buffer Cmo_support Float Int64 List Option Printf String
