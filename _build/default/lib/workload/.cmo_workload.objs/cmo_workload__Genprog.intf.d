lib/workload/genprog.mli:
