lib/workload/suite.mli: Genprog
