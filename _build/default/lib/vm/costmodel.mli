(** The machine cost model.

    Prices exactly the effects the paper's optimizations exploit (the
    reproduction substitutes this simulator for the PA-8000
    measurements — see DESIGN.md):

    - ALU/immediate operations: 1 cycle; multiply 3; divide 12;
    - loads/stores: 2 cycles (flat data memory; the locality effects
      the paper leverages are in the *instruction* stream);
    - branches: 1 cycle, +[taken_branch_penalty] when taken — what
      profile-guided block positioning saves;
    - calls/returns: [call_cycles]/[ret_cycles] for the control
      transfer and hardware link stack; the callee's
      prologue/epilogue instructions are explicit code and price
      themselves — what inlining saves;
    - instruction fetch through a direct-mapped i-cache
      ([icache_bytes], [line_bytes], [miss_cycles]) — what both block
      positioning and routine clustering save;
    - [Sys] (runtime services): a fixed, deliberately expensive cost
      so optimization cannot "win" by perturbing I/O.

    All numbers live here so experiments can ablate them. *)

type t = {
  alu_cycles : int;
  mul_cycles : int;
  div_cycles : int;
  mem_cycles : int;
  load_use_stall : int;
      (** Extra cycles when an instruction consumes the result of the
          immediately preceding load — the pipeline hazard the LLO
          list scheduler exists to hide. *)
  taken_branch_penalty : int;
  call_cycles : int;
  ret_cycles : int;
  sys_cycles : int;
  icache_bytes : int;
  line_bytes : int;
  miss_cycles : int;
  dcache_bytes : int;
  dcache_line_bytes : int;
  dcache_miss_cycles : int;
      (** The data cache prices data locality (the paper's section
          4.4 note that "memory system implementations increasingly
          reward memory access locality"); set [dcache_miss_cycles]
          to 0 to disable. *)
}

val default : t
(** 16 KB direct-mapped i-cache, 32-byte lines, 20-cycle miss. *)

val no_icache : t
(** [default] with a zero i-cache miss penalty — ablation for layout
    experiments. *)

val no_dcache : t
(** [default] with a zero d-cache miss penalty. *)

val no_stall : t
(** [default] with a zero load-use stall — ablation for the
    scheduler. *)

val op_cycles : t -> Cmo_il.Instr.binop -> int
