type t = {
  alu_cycles : int;
  mul_cycles : int;
  div_cycles : int;
  mem_cycles : int;
  load_use_stall : int;
  taken_branch_penalty : int;
  call_cycles : int;
  ret_cycles : int;
  sys_cycles : int;
  icache_bytes : int;
  line_bytes : int;
  miss_cycles : int;
  dcache_bytes : int;
  dcache_line_bytes : int;
  dcache_miss_cycles : int;
}

let default =
  {
    alu_cycles = 1;
    mul_cycles = 3;
    div_cycles = 12;
    mem_cycles = 2;
    load_use_stall = 2;
    taken_branch_penalty = 2;
    call_cycles = 3;
    ret_cycles = 3;
    sys_cycles = 20;
    icache_bytes = 16 * 1024;
    line_bytes = 32;
    miss_cycles = 20;
    dcache_bytes = 32 * 1024;
    dcache_line_bytes = 32;
    dcache_miss_cycles = 30;
  }

let no_icache = { default with miss_cycles = 0 }

let no_dcache = { default with dcache_miss_cycles = 0 }

let no_stall = { default with load_use_stall = 0 }

let op_cycles t = function
  | Cmo_il.Instr.Mul -> t.mul_cycles
  | Cmo_il.Instr.Div | Cmo_il.Instr.Rem -> t.div_cycles
  | Cmo_il.Instr.Add | Cmo_il.Instr.Sub | Cmo_il.Instr.And | Cmo_il.Instr.Or
  | Cmo_il.Instr.Xor | Cmo_il.Instr.Shl | Cmo_il.Instr.Shr | Cmo_il.Instr.Eq
  | Cmo_il.Instr.Ne | Cmo_il.Instr.Lt | Cmo_il.Instr.Le | Cmo_il.Instr.Gt
  | Cmo_il.Instr.Ge -> t.alu_cycles
