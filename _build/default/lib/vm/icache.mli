(** Direct-mapped instruction cache simulator.

    Code addresses are instruction indices; each instruction occupies
    {!Mach.instr_bytes} bytes of code space.  A fetch hits when the
    line holding the instruction's byte address carries the right tag.
    This is what makes code placement (block positioning within a
    routine, routine clustering across the image) measurable. *)

module Mach := Cmo_llo.Mach


type t

val create : Costmodel.t -> t
(** The instruction cache of the model. *)

val create_custom : total_bytes:int -> line_bytes:int -> item_bytes:int -> t
(** A direct-mapped cache over any address space; [item_bytes] is the
    size of one addressable unit (4 for instructions, 8 for data
    cells).  Used for the data-cache model too. *)

val fetch : t -> int -> bool
(** [fetch t addr] simulates fetching the instruction at address
    [addr]; returns [true] on a hit (and updates the cache). *)

val accesses : t -> int
val misses : t -> int
val reset : t -> unit
