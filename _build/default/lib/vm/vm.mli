(** The machine simulator: executes a linked {!Cmo_link.Image} under
    the {!Costmodel}, producing observable output, cycle counts, and
    (for instrumented binaries) profile counters.

    Observable semantics are identical to the IL reference interpreter
    ({!Cmo_il.Interp}): division by zero yields zero, shifts mask
    their amount, [arg] wraps modulo the input length, [print] appends
    to the output stream.  Differential tests rely on this.

    Register 0 always reads zero; writes to it are discarded.  The
    return-address stack is internal (not addressable).  Memory is
    the data segment with the stack above it, growing down; any access
    outside [0, memory size) traps. *)

type outcome = {
  ret : int64;
  output : int64 list;
  cycles : int;  (** Modeled run time — the paper's seconds. *)
  instructions : int;  (** Instructions retired. *)
  icache_accesses : int;
  icache_misses : int;
  taken_branches : int;
  calls : int;
  dcache_accesses : int;
  dcache_misses : int;
  probes : (int * int64) list;  (** Sorted by probe id. *)
  func_cycles : (string * int) list;
      (** With [attribute]: cycles charged to each routine (by the
          address of the executing instruction, i-cache misses
          included), hottest first.  Empty otherwise. *)
}

exception Fault of string
(** Memory out of bounds, stack overflow, halt in the middle of a
    call, fuel exhaustion, unresolved symbolic instruction. *)

val run :
  ?input:int64 array ->
  ?fuel:int ->
  ?stack_cells:int ->
  ?costmodel:Costmodel.t ->
  ?attribute:bool ->
  Cmo_link.Image.t ->
  outcome
(** [fuel] bounds retired instructions (default 500 million);
    [stack_cells] default 65536; [attribute] (default false) turns on
    per-routine cycle attribution — the flat-profile view performance
    analysts read. *)
