module Mach = Cmo_llo.Mach
type t = {
  lines : int array;  (* tag per line; -1 = invalid *)
  num_lines : int;
  instrs_per_line : int;
  mutable accesses : int;
  mutable misses : int;
}

let create_custom ~total_bytes ~line_bytes ~item_bytes =
  let num_lines = max 1 (total_bytes / line_bytes) in
  {
    lines = Array.make num_lines (-1);
    num_lines;
    instrs_per_line = max 1 (line_bytes / item_bytes);
    accesses = 0;
    misses = 0;
  }

let create (cm : Costmodel.t) =
  create_custom ~total_bytes:cm.Costmodel.icache_bytes
    ~line_bytes:cm.Costmodel.line_bytes ~item_bytes:Mach.instr_bytes

let fetch t addr =
  t.accesses <- t.accesses + 1;
  let line_no = addr / t.instrs_per_line in
  let index = line_no mod t.num_lines in
  let tag = line_no / t.num_lines in
  if t.lines.(index) = tag then true
  else begin
    t.lines.(index) <- tag;
    t.misses <- t.misses + 1;
    false
  end

let accesses t = t.accesses

let misses t = t.misses

let reset t =
  Array.fill t.lines 0 t.num_lines (-1);
  t.accesses <- 0;
  t.misses <- 0
