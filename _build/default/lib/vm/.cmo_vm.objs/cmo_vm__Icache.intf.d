lib/vm/icache.mli: Cmo_llo Costmodel
