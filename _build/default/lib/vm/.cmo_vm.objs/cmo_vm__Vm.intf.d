lib/vm/vm.mli: Cmo_link Costmodel
