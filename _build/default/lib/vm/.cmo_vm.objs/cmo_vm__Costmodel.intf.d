lib/vm/costmodel.mli: Cmo_il
