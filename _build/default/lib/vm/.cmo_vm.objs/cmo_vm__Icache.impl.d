lib/vm/icache.ml: Array Cmo_llo Costmodel
