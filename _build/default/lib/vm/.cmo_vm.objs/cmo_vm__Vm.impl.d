lib/vm/vm.ml: Array Cmo_il Cmo_link Cmo_llo Costmodel Format Hashtbl Icache Int64 List Option
