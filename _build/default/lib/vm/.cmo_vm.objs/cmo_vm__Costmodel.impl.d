lib/vm/costmodel.ml: Cmo_il
