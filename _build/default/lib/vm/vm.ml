module Mach = Cmo_llo.Mach
module Instr = Cmo_il.Instr
module Image = Cmo_link.Image

type outcome = {
  ret : int64;
  output : int64 list;
  cycles : int;
  instructions : int;
  icache_accesses : int;
  icache_misses : int;
  taken_branches : int;
  calls : int;
  dcache_accesses : int;
  dcache_misses : int;
  probes : (int * int64) list;
  func_cycles : (string * int) list;
}

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

let run ?(input = [||]) ?(fuel = 500_000_000) ?(stack_cells = 65_536)
    ?(costmodel = Costmodel.default) ?(attribute = false) (image : Image.t) =
  let cm = costmodel in
  let code = image.Image.code in
  let code_len = Array.length code in
  let mem_size = image.Image.data_cells + stack_cells in
  let mem = Array.make (max mem_size 1) 0L in
  List.iter (fun (addr, v) -> mem.(addr) <- v) image.Image.data_init;
  let regs = Array.make 32 0L in
  regs.(Mach.reg_sp) <- Int64.of_int mem_size;
  let icache = Icache.create cm in
  let dcache =
    Icache.create_custom ~total_bytes:cm.Costmodel.dcache_bytes
      ~line_bytes:cm.Costmodel.dcache_line_bytes ~item_bytes:8
  in
  let probes = Hashtbl.create 64 in
  let output_rev = ref [] in
  let ra_stack = ref [] in
  let cycles = ref 0 in
  let instructions = ref 0 in
  let taken_branches = ref 0 in
  let calls = ref 0 in
  let get r = if r = Mach.reg_zero then 0L else regs.(r) in
  let set r v = if r <> Mach.reg_zero then regs.(r) <- v in
  let mem_access addr =
    if addr < 0 || addr >= mem_size then
      fault "memory access out of bounds: cell %d (size %d)" addr mem_size;
    if cm.Costmodel.dcache_miss_cycles > 0 && not (Icache.fetch dcache addr)
    then cycles := !cycles + cm.Costmodel.dcache_miss_cycles;
    addr
  in
  (* Per-routine attribution: a direct pc -> routine-index map makes
     the per-instruction charge O(1). *)
  let func_names = Array.of_list (List.map (fun (n, _, _) -> n) image.Image.funcs) in
  let func_of_pc =
    if not attribute then [||]
    else begin
      let map = Array.make (max code_len 1) (-1) in
      List.iteri
        (fun idx (_, start, len) ->
          for a = start to start + len - 1 do
            map.(a) <- idx
          done)
        image.Image.funcs;
      map
    end
  in
  let func_acc = Array.make (Array.length func_names) 0 in
  let pc = ref image.Image.entry in
  let halted = ref false in
  let final_ret = ref 0L in
  (* Load-use hazard: destination of the load retired in the previous
     slot; consuming it immediately stalls the pipeline. *)
  let pending_load = ref (-1) in
  while not !halted do
    if !pc < 0 || !pc >= code_len then fault "pc out of code: @%d" !pc;
    if !instructions >= fuel then fault "fuel exhausted (%d instructions)" fuel;
    incr instructions;
    let cycles_before = !cycles in
    let attributed_pc = !pc in
    if not (Icache.fetch icache !pc) then cycles := !cycles + cm.Costmodel.miss_cycles;
    (if !pending_load >= 0 && cm.Costmodel.load_use_stall > 0 then begin
       let instr = code.(!pc) in
       if List.mem !pending_load (Mach.uses instr) then
         cycles := !cycles + cm.Costmodel.load_use_stall
     end);
    pending_load :=
      (match code.(!pc) with Mach.Ld (d, _, _) -> d | _ -> -1);
    let next = !pc + 1 in
    (match code.(!pc) with
    | Mach.Li (d, v) ->
      set d v;
      cycles := !cycles + cm.Costmodel.alu_cycles;
      pc := next
    | Mach.Mv (d, s) ->
      set d (get s);
      cycles := !cycles + cm.Costmodel.alu_cycles;
      pc := next
    | Mach.Op (op, d, a, b) ->
      set d (Instr.eval_binop op (get a) (get b));
      cycles := !cycles + Costmodel.op_cycles cm op;
      pc := next
    | Mach.Opi (op, d, s, imm) ->
      set d (Instr.eval_binop op (get s) imm);
      cycles := !cycles + Costmodel.op_cycles cm op;
      pc := next
    | Mach.Un (op, d, s) ->
      set d (Instr.eval_unop op (get s));
      cycles := !cycles + cm.Costmodel.alu_cycles;
      pc := next
    | Mach.Ld (d, b, off) ->
      let addr = mem_access (Int64.to_int (get b) + off) in
      set d mem.(addr);
      cycles := !cycles + cm.Costmodel.mem_cycles;
      pc := next
    | Mach.St (v, b, off) ->
      let addr = mem_access (Int64.to_int (get b) + off) in
      mem.(addr) <- get v;
      cycles := !cycles + cm.Costmodel.mem_cycles;
      pc := next
    | Mach.Lga (_, s) -> fault "unresolved global reference %s" s
    | Mach.Call_sym s -> fault "unresolved call to %s" s
    | Mach.B t ->
      cycles := !cycles + cm.Costmodel.alu_cycles + cm.Costmodel.taken_branch_penalty;
      incr taken_branches;
      pc := t
    | Mach.Bz (r, t) ->
      cycles := !cycles + cm.Costmodel.alu_cycles;
      if Int64.equal (get r) 0L then begin
        cycles := !cycles + cm.Costmodel.taken_branch_penalty;
        incr taken_branches;
        pc := t
      end
      else pc := next
    | Mach.Bnz (r, t) ->
      cycles := !cycles + cm.Costmodel.alu_cycles;
      if not (Int64.equal (get r) 0L) then begin
        cycles := !cycles + cm.Costmodel.taken_branch_penalty;
        incr taken_branches;
        pc := t
      end
      else pc := next
    | Mach.Call_abs t ->
      cycles := !cycles + cm.Costmodel.call_cycles;
      incr calls;
      ra_stack := next :: !ra_stack;
      if List.length !ra_stack > 100_000 then fault "call stack overflow";
      pc := t
    | Mach.Ret -> (
      cycles := !cycles + cm.Costmodel.ret_cycles;
      match !ra_stack with
      | ra :: rest ->
        ra_stack := rest;
        pc := ra
      | [] ->
        (* Return from main: program finished. *)
        final_ret := get Mach.reg_rv;
        halted := true)
    | Mach.Sys Mach.Sys_print ->
      let v = get (Mach.reg_arg 0) in
      output_rev := v :: !output_rev;
      set Mach.reg_rv v;
      cycles := !cycles + cm.Costmodel.sys_cycles;
      pc := next
    | Mach.Sys Mach.Sys_arg ->
      let i = Int64.to_int (get (Mach.reg_arg 0)) in
      let n = Array.length input in
      let v = if n = 0 then 0L else input.(((i mod n) + n) mod n) in
      set Mach.reg_rv v;
      cycles := !cycles + cm.Costmodel.sys_cycles;
      pc := next
    | Mach.Adjsp n ->
      let sp = Int64.to_int (get Mach.reg_sp) + n in
      if sp < image.Image.data_cells then fault "stack overflow (sp=%d)" sp;
      if sp > mem_size then fault "stack underflow (sp=%d)" sp;
      set Mach.reg_sp (Int64.of_int sp);
      cycles := !cycles + cm.Costmodel.alu_cycles;
      pc := next
    | Mach.Cnt p ->
      let prev = Option.value ~default:0L (Hashtbl.find_opt probes p) in
      Hashtbl.replace probes p (Int64.add prev 1L);
      cycles := !cycles + cm.Costmodel.alu_cycles;
      pc := next
    | Mach.Halt ->
      final_ret := get Mach.reg_rv;
      halted := true);
    if attribute then begin
      let idx = func_of_pc.(attributed_pc) in
      if idx >= 0 then func_acc.(idx) <- func_acc.(idx) + (!cycles - cycles_before)
    end
  done;
  let probes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) probes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let func_cycles =
    if not attribute then []
    else
      Array.to_list (Array.mapi (fun i c -> (func_names.(i), c)) func_acc)
      |> List.filter (fun (_, c) -> c > 0)
      |> List.sort (fun (n1, c1) (n2, c2) ->
             match compare c2 c1 with 0 -> compare n1 n2 | c -> c)
  in
  {
    ret = !final_ret;
    output = List.rev !output_rev;
    cycles = !cycles;
    instructions = !instructions;
    icache_accesses = Icache.accesses icache;
    icache_misses = Icache.misses icache;
    taken_branches = !taken_branches;
    calls = !calls;
    dcache_accesses = Icache.accesses dcache;
    dcache_misses = Icache.misses dcache;
    probes;
    func_cycles;
  }
