lib/profile/db.ml: Cmo_support Format Fun Hashtbl List Option Printf
