lib/profile/correlate.mli: Cmo_il Db Format
