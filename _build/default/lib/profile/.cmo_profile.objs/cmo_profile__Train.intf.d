lib/profile/train.mli: Cmo_il Db
