lib/profile/correlate.ml: Cmo_il Db Format List
