lib/profile/db.mli: Format
