lib/profile/probe.mli: Cmo_il Db
