lib/profile/train.ml: Cmo_il List Probe
