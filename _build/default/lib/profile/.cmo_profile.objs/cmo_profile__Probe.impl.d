lib/profile/probe.ml: Cmo_il Db Hashtbl Int64 List Option
