module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Instr = Cmo_il.Instr

type stats = {
  functions : int;
  functions_with_profile : int;
  blocks : int;
  blocks_matched : int;
  total_count : float;
}

let annotate db modules =
  let functions = ref 0 in
  let functions_with_profile = ref 0 in
  let blocks = ref 0 in
  let blocks_matched = ref 0 in
  let total_count = ref 0.0 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          incr functions;
          let any = ref false in
          List.iter
            (fun (b : Func.block) ->
              incr blocks;
              let key = Db.Block (f.Func.name, b.Func.label) in
              let count = Db.get db key in
              if Db.mem db key then begin
                incr blocks_matched;
                any := true
              end;
              b.Func.freq <- count;
              total_count := !total_count +. count;
              List.iter
                (fun i ->
                  match i with
                  | Instr.Call c -> c.Instr.call_count <- count
                  | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
                  | Instr.Store _ | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks;
          if !any then incr functions_with_profile)
        m.Ilmod.funcs)
    modules;
  {
    functions = !functions;
    functions_with_profile = !functions_with_profile;
    blocks = !blocks;
    blocks_matched = !blocks_matched;
    total_count = !total_count;
  }

let clear modules =
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (b : Func.block) ->
              b.Func.freq <- 0.0;
              List.iter
                (fun i ->
                  match i with
                  | Instr.Call c -> c.Instr.call_count <- 0.0
                  | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
                  | Instr.Store _ | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks)
        m.Ilmod.funcs)
    modules

let edge_count db ~fname ~src ~dst = Db.get db (Db.Edge (fname, src, dst))

let pp_stats ppf s =
  Format.fprintf ppf
    "functions %d/%d with profile, blocks %d/%d matched, total count %.0f"
    s.functions_with_profile s.functions s.blocks_matched s.blocks
    s.total_count
