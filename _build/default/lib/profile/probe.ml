module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Ilcodec = Cmo_il.Ilcodec

type manifest = { keys : (int, Db.key) Hashtbl.t; mutable next : int }

let fresh manifest key =
  let id = manifest.next in
  manifest.next <- id + 1;
  Hashtbl.replace manifest.keys id key;
  id

let instrument_func manifest (f : Func.t) =
  (* Copy deeply via the codec so the original stays untouched. *)
  let f = Ilcodec.roundtrip_func f in
  (* Block probes first: labels are still the frontend's. *)
  List.iter
    (fun (b : Func.block) ->
      let id = fresh manifest (Db.Block (f.Func.name, b.Func.label)) in
      b.Func.instrs <- Instr.Probe id :: b.Func.instrs)
    f.Func.blocks;
  (* Split conditional edges through probe trampolines. *)
  let original_blocks = f.Func.blocks in
  List.iter
    (fun (b : Func.block) ->
      match b.Func.term with
      | Instr.Br { cond; ifso; ifnot } ->
        let split target =
          let id = fresh manifest (Db.Edge (f.Func.name, b.Func.label, target)) in
          let tramp = Func.add_block f [ Instr.Probe id ] (Instr.Jmp target) in
          tramp.Func.label
        in
        let ifso' = split ifso in
        let ifnot' = split ifnot in
        b.Func.term <- Instr.Br { cond; ifso = ifso'; ifnot = ifnot' }
      | Instr.Ret _ | Instr.Jmp _ -> ())
    original_blocks;
  f

let instrument modules =
  let manifest = { keys = Hashtbl.create 1024; next = 0 } in
  let instrumented =
    List.map
      (fun (m : Ilmod.t) ->
        {
          m with
          Ilmod.funcs = List.map (instrument_func manifest) m.Ilmod.funcs;
        })
      modules
  in
  (instrumented, manifest)

let probe_count manifest = manifest.next

let key_of_probe manifest id = Hashtbl.find_opt manifest.keys id

let record_counters manifest counters db =
  (* The counter array of a real instrumented binary contains a slot
     for every probe; execution engines report only touched probes, so
     fill the untouched ones with explicit zeros — a zero count
     ("cold") is information, distinct from a missing key ("stale"). *)
  let touched = Hashtbl.create (List.length counters) in
  List.iter
    (fun (id, count) ->
      if Hashtbl.mem manifest.keys id then Hashtbl.replace touched id count)
    counters;
  for id = 0 to manifest.next - 1 do
    match key_of_probe manifest id with
    | Some key ->
      let count = Option.value ~default:0L (Hashtbl.find_opt touched id) in
      Db.add db key (Int64.to_float count)
    | None -> ()
  done
