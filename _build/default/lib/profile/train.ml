let run ?input ?fuel modules db =
  let instrumented, manifest = Probe.instrument modules in
  let outcome = Cmo_il.Interp.run ?input ?fuel instrumented in
  Probe.record_counters manifest outcome.Cmo_il.Interp.probes db;
  outcome

let run_many ~inputs modules db =
  List.iter (fun input -> ignore (run ~input modules db)) inputs
