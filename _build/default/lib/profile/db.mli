(** The profile database.

    Persistent store of execution counts keyed by stable program
    coordinates (function name, block label, edge).  It is the only
    persistent state of the system that does not live in object files
    (paper section 6.1: "our system works with existing processes by
    maintaining all persistent information (save for profile data) in
    object files").

    Counts are floats: merging and scaling (stale-profile decay,
    inline distribution) produce fractional values. *)

type key =
  | Fentry of string  (** Function entry count. *)
  | Block of string * int  (** (function, block label) execution count. *)
  | Edge of string * int * int
      (** (function, from label, to label) traversal count of a
          conditional edge. *)

type t

val create : unit -> t

val add : t -> key -> float -> unit
(** Accumulate into the existing count. *)

val get : t -> key -> float
(** 0 when absent. *)

val mem : t -> key -> bool

val is_empty : t -> bool

val entries : t -> (key * float) list
(** Deterministically ordered (by key). *)

val merge : into:t -> t -> unit
(** Accumulate every count of the second database into [into]. *)

val total : t -> float

val save : t -> string -> unit
(** Write to a file (binary, versioned). *)

val load : string -> t
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input,
    [Sys_error] if unreadable. *)

val pp_key : Format.formatter -> key -> unit
