(** Profile instrumentation (+I builds).

    Mirrors the paper's section 3: "the current technology inserts
    counting probes into each intraprocedural branch and each call".
    Concretely, on a copy of the frontend IL we:

    - prepend a [Probe] to every basic block (block counts; the count
      of a call site is the count of its containing block, since IL
      calls do not end blocks);
    - split every conditional-branch edge through a fresh trampoline
      block holding a [Probe] (edge counts for profile-guided code
      positioning); unconditional edges need no probe — their count is
      the source block's.

    Probe ids are dense and program-global; the manifest maps each id
    back to the {!Db.key} it measures.  Because frontend output is
    deterministic, block labels in the manifest correlate directly
    with the labels HLO sees when recompiling the same source. *)

type manifest
(** Mapping from probe id to the profile-database key it increments. *)

val instrument : Cmo_il.Ilmod.t list -> Cmo_il.Ilmod.t list * manifest
(** Returns instrumented deep copies; the inputs are not modified. *)

val probe_count : manifest -> int

val key_of_probe : manifest -> int -> Db.key option

val record_counters : manifest -> (int * int64) list -> Db.t -> unit
(** Fold raw [(probe id, count)] counters (as produced by the
    interpreter or the VM) into a profile database, accumulating with
    existing counts — the paper's database is "generated (or added
    to, if data from an earlier run already exists)". *)
