(** Training runs: execute an instrumented program and collect its
    profile database.

    This is the "+I, run on training inputs" loop of the paper's
    section 3, using the reference interpreter as the execution
    vehicle (production training would run the instrumented PA-RISC
    binary; the counters are identical either way since both count
    [Probe] executions). *)

val run :
  ?input:int64 array ->
  ?fuel:int ->
  Cmo_il.Ilmod.t list ->
  Db.t ->
  Cmo_il.Interp.outcome
(** [run modules db] instruments [modules], executes [main] on
    [input], folds the counters into [db], and returns the program
    outcome (so callers can cross-check observable behaviour against
    an uninstrumented run).
    @raise Cmo_il.Interp.Runtime_error as the interpreter does. *)

val run_many : inputs:int64 array list -> Cmo_il.Ilmod.t list -> Db.t -> unit
(** Accumulate several training runs into one database — the paper's
    "added to, if data from an earlier run already exists". *)
