type t = {
  table : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create () = { table = Hashtbl.create 64; names = Array.make 64 ""; count = 0 }

let grow t =
  let cap = Array.length t.names in
  if t.count = cap then begin
    let names = Array.make (cap * 2) "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names
  end

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
    let id = t.count in
    grow t;
    t.names.(id) <- s;
    t.count <- t.count + 1;
    Hashtbl.add t.table s id;
    id

let find_opt t s = Hashtbl.find_opt t.table s

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Intern.name: unknown id";
  t.names.(id)

let count t = t.count

let iter t f =
  for id = 0 to t.count - 1 do
    f id t.names.(id)
  done
