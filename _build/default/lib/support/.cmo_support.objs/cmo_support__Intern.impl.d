lib/support/intern.ml: Array Hashtbl
