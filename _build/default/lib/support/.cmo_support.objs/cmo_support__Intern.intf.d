lib/support/intern.mli:
