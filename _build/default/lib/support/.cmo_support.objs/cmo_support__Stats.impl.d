lib/support/stats.ml: Array Float
