lib/support/codec.mli:
