lib/support/stats.mli:
