lib/support/prng.mli:
