type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) land max_int in
  let unit = float_of_int v /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let target = float t total in
  let rec go i acc =
    if i = Array.length items - 1 then fst items.(i)
    else
      let acc = acc +. snd items.(i) in
      if target < acc then fst items.(i) else go (i + 1) acc
  in
  go 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Inverse-CDF sampling over the finite harmonic weights.  [n] is
   typically small enough (call sites per function, functions per
   module) that the O(n) walk is irrelevant; for large [n] callers
   cache ranks themselves. *)
let zipf t ~n ~s =
  assert (n > 0);
  let weights = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = float t total in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.0
