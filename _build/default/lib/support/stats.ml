let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  let frac = rank -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (xs.(0), xs.(0)) xs

let ratio a b = if b = 0.0 then 0.0 else a /. b
