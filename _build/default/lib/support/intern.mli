(** String interning.

    The optimizer keys every container on dense integer ids rather
    than strings or addresses (paper section 6.2: sorting or hashing
    on virtual addresses had to be rewritten for reproducibility).
    An interner provides a bijection between strings and dense ids. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id for [s], allocating one if new.  Ids
    are dense, starting at 0, in first-interned order. *)

val find_opt : t -> string -> int option
(** Lookup without allocating. *)

val name : t -> int -> string
(** Inverse mapping. Raises [Invalid_argument] on an unknown id. *)

val count : t -> int
(** Number of interned strings. *)

val iter : t -> (int -> string -> unit) -> unit
(** Iterate in id order. *)
