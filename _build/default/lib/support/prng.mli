(** Deterministic pseudo-random number generation.

    All randomness in the system flows through this module so that a
    given seed reproduces an identical compilation and workload,
    mirroring the paper's reproducibility requirement (section 6.2:
    "the compiler must behave in exactly the same way ... from run to
    run").  The generator is a splitmix64 variant: cheap, splittable
    and platform-independent. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** [choose_weighted t items] picks proportionally to the weights,
    which must be non-negative and not all zero. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] from a Zipf
    distribution with exponent [s]; rank 0 is the most likely.  Used
    to generate the skewed call-frequency profiles that drive the
    paper's selectivity results. *)
