(** Small numeric helpers for the benchmark harness and reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation.
    The input need not be sorted. *)

val sum : float array -> float
val min_max : float array -> float * float
(** Raises [Invalid_argument] on an empty array. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]. *)
