(** Compact binary encoding buffers.

    This codec is the substrate of the paper's "relocatable form"
    (section 4.2.1): objects are written into a dense
    address-independent byte stream, with all inter-object references
    expressed as persistent identifiers.  The same byte format is used
    for object-file IL sections and the NAIM disk repository.

    Integers use LEB128-style varints so small values (the common
    case: register numbers, opcode tags, short offsets) occupy one
    byte, which is where the paper's ~2x compaction ratio comes
    from. *)

module Writer : sig
  type t

  val create : unit -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  (** Zig-zag varint: efficient for small magnitudes of either sign. *)

  val uvarint : t -> int -> unit
  (** Unsigned varint; requires a non-negative argument. *)

  val int64 : t -> int64 -> unit
  val string : t -> string -> unit
  (** Length-prefixed string. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Length-prefixed list written with the given element writer. *)

  val array : t -> ('a -> unit) -> 'a array -> unit
  val length : t -> int
  val contents : t -> string
end

module Reader : sig
  type t

  exception Corrupt of string
  (** Raised on malformed input: truncation or an invalid tag. *)

  val of_string : string -> t
  val byte : t -> int
  val varint : t -> int
  val uvarint : t -> int
  val int64 : t -> int64
  val string : t -> string
  val bool : t -> bool
  val float : t -> float
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val at_end : t -> bool
  val corrupt : string -> 'a
  (** [corrupt msg] raises {!Corrupt}; for use by client decoders. *)
end
