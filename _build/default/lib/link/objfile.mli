(** Object files.

    The unit of the build system and the carrier of all persistent
    compiler state except profiles (paper section 6.1: "our system
    works with existing processes by maintaining all persistent
    information (save for profile data) in object files").

    An object file holds either:
    - a {b code} payload: machine code per routine plus the module's
      global definitions — a conventionally compiled module; or
    - an {b IL} payload: the frontend's intermediate language — a
      module compiled in CMO mode (+O4), which the frontends "dump
      directly to object files that correspond to the source modules"
      and the linker later routes through HLO (paper section 3).

    The IL bytes are exactly the {!Cmo_il.Ilcodec} relocatable form —
    the same representation the NAIM repository uses. *)

module Mach := Cmo_llo.Mach


type payload =
  | Code of Mach.func_code list
  | Il of Cmo_il.Ilmod.t

type t = {
  module_name : string;
  globals : Cmo_il.Ilmod.global list;
      (** Also present inside an [Il] payload; duplicated here so the
          linker can allocate data without decoding payloads. *)
  payload : payload;
  source_digest : string;
      (** Digest of the source the object was built from; the build
          system's up-to-date check. *)
}

val of_code :
  module_name:string ->
  globals:Cmo_il.Ilmod.global list ->
  source_digest:string ->
  Mach.func_code list ->
  t

val of_il : source_digest:string -> Cmo_il.Ilmod.t -> t

val is_il : t -> bool

val encode : t -> string
val decode : string -> t
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

val save : t -> string -> unit
val load : string -> t
(** @raise Sys_error / [Corrupt] as appropriate. *)

val func_names : t -> string list
(** Functions defined by this object, in order. *)
