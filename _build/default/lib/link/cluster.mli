(** Profile-guided routine clustering (Pettis–Hansen procedure
    positioning [13], as used for the HP-UX kernel in [15]).

    The paper's section 2: "The linker also uses profile data to
    cluster frequently-used routines together in the final program
    image."  Routines that call each other often are placed adjacent
    so the hot working set occupies fewer i-cache lines (and fewer
    pages).

    Greedy edge coalescing on the dynamic call multigraph: edges
    sorted by weight, chains merged tail-to-head or head-to-tail;
    chains ordered hottest-first, zero-weight routines last in their
    original order. *)

val order :
  names:string list ->
  weights:((string * string) * float) list ->
  string list
(** [order ~names ~weights] permutes [names] (every input name appears
    exactly once in the result).  [weights] keys are (caller, callee)
    pairs; unknown names in [weights] are ignored.  With no positive
    weights, [names] is returned unchanged. *)
