module Mach = Cmo_llo.Mach
type t = {
  code : Mach.instr array;
  entry : int;
  funcs : (string * int * int) list;
  globals : (string * int * int) list;
  data_init : (int * int64) list;
  data_cells : int;
}

let func_of_address t addr =
  List.find_map
    (fun (name, start, len) ->
      if addr >= start && addr < start + len then Some name else None)
    t.funcs

let code_bytes t = Array.length t.code * Mach.instr_bytes

let pp_map ppf t =
  Format.fprintf ppf "@[<v>image: %d instrs (%d bytes), %d data cells"
    (Array.length t.code) (code_bytes t) t.data_cells;
  Format.fprintf ppf "@,entry: @%d" t.entry;
  List.iter
    (fun (name, start, len) ->
      Format.fprintf ppf "@,  %8d +%-6d %s" start len name)
    t.funcs;
  List.iter
    (fun (name, base, size) ->
      Format.fprintf ppf "@,  data %6d [%d] %s" base size name)
    t.globals;
  Format.fprintf ppf "@]"
