(** The linker: symbol resolution and image assembly.

    Accepts object files whose payloads are already machine code.  IL
    payloads are a CMO-mode concern: the compilation driver detects
    them, routes them through HLO and LLO (paper Figure 2), and calls
    back here with the resulting code objects; handing an IL object
    directly to [link] is reported as an error rather than silently
    mislinked.

    [routine_order], when given (profile-guided clustering, see
    {!Cluster}), decides function placement in the image; routines
    not mentioned keep their relative input order at the end. *)

type error =
  | Undefined_symbol of string * string  (** referencing module, name. *)
  | Duplicate_symbol of string * string * string
  | No_entry  (** No [main] function. *)
  | Il_payload of string  (** Module still carrying IL. *)

val link :
  ?routine_order:string list ->
  Objfile.t list ->
  (Image.t, error list) result

val pp_error : Format.formatter -> error -> unit
