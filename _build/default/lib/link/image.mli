(** The linked executable image: absolute machine code, a data
    segment layout, and the symbol maps the VM and the debugger-style
    reports need. *)

module Mach := Cmo_llo.Mach


type t = {
  code : Mach.instr array;
      (** All symbolic references resolved; branch/call targets are
          absolute instruction addresses. *)
  entry : int;  (** Address of [main]. *)
  funcs : (string * int * int) list;
      (** (name, start address, instruction count), in image order. *)
  globals : (string * int * int) list;
      (** (name, base cell address, size in cells), in layout order. *)
  data_init : (int * int64) list;
      (** Non-zero initial cells: (address, value). *)
  data_cells : int;  (** Data segment size in cells. *)
}

val func_of_address : t -> int -> string option
(** Which routine contains a code address (for traces/reports). *)

val code_bytes : t -> int

val pp_map : Format.formatter -> t -> unit
(** Linker-map style summary. *)
