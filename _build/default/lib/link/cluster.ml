type chain = { mutable members : string list }

let order ~names ~weights =
  let known = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace known n ()) names;
  let positive =
    List.filter
      (fun ((a, b), w) ->
        w > 0.0 && a <> b && Hashtbl.mem known a && Hashtbl.mem known b)
      weights
  in
  if positive = [] then names
  else begin
    let sorted =
      List.sort
        (fun ((a1, b1), w1) ((a2, b2), w2) ->
          match compare w2 w1 with
          | 0 -> compare (a1, b1) (a2, b2)
          | c -> c)
        positive
    in
    let chain_of = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace chain_of n { members = [ n ] }) names;
    List.iter
      (fun ((a, b), _) ->
        let ca = Hashtbl.find chain_of a in
        let cb = Hashtbl.find chain_of b in
        if ca != cb then begin
          (* Join the callee's chain after the caller's. *)
          ca.members <- ca.members @ cb.members;
          List.iter (fun n -> Hashtbl.replace chain_of n ca) cb.members
        end)
      sorted;
    (* Total weight per chain decides chain order. *)
    let chain_weight = Hashtbl.create 16 in
    List.iter
      (fun ((a, _), w) ->
        let c = Hashtbl.find chain_of a in
        let key = List.hd c.members in
        Hashtbl.replace chain_weight key
          (w +. Option.value ~default:0.0 (Hashtbl.find_opt chain_weight key)))
      positive;
    let seen = Hashtbl.create 16 in
    let chains =
      List.filter_map
        (fun n ->
          let c = Hashtbl.find chain_of n in
          let key = List.hd c.members in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            Some (Option.value ~default:0.0 (Hashtbl.find_opt chain_weight key), c)
          end)
        names
    in
    let hot, cold = List.partition (fun (w, _) -> w > 0.0) chains in
    let hot_sorted = List.stable_sort (fun (w1, _) (w2, _) -> compare w2 w1) hot in
    List.concat_map (fun (_, c) -> c.members) (hot_sorted @ cold)
  end
