lib/link/cluster.ml: Hashtbl List Option
