lib/link/cluster.mli:
