lib/link/objfile.ml: Cmo_il Cmo_llo Cmo_support Fun List Printf
