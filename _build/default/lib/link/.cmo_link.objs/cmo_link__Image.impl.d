lib/link/image.ml: Array Cmo_llo Format List
