lib/link/image.mli: Cmo_llo Format
