lib/link/objfile.mli: Cmo_il Cmo_llo
