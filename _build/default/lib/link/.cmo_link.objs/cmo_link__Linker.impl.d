lib/link/linker.ml: Array Cmo_il Cmo_llo Format Hashtbl Image Int64 List Objfile
