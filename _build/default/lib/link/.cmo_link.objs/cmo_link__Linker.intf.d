lib/link/linker.mli: Format Image Objfile
