(* The bug-isolation workflow of the paper's section 6.3: when a
   program misbehaves only under large-scale interprocedural
   optimization, reduce along two dimensions — the modules exposed to
   CMO, and the number of optimizer operations — by binary search over
   controllable operation limits.

   Our optimizer has no known miscompilation to hunt, so this example
   stages one: the "failure" predicate flags any build whose dynamic
   call count differs from the uninlined build's — i.e. it blames the
   first inline operation that actually changes the program, which is
   exactly the mechanical search a real miscompile would need.

     dune exec examples/debug_miscompile.exe *)

module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Isolate = Cmo_driver.Isolate
module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Vm = Cmo_vm.Vm

let () =
  let cfg = Genprog.scale (Suite.find "li") 1.0 in
  let sources =
    List.map
      (fun (name, text) -> { Pipeline.name; text })
      (Genprog.generate cfg)
  in
  let profile = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let input = Genprog.reference_input cfg in
  let module_names = List.map (fun s -> s.Pipeline.name) sources in

  (* Reference behaviour: the fully-uninlined build. *)
  let observe options =
    let build = Pipeline.compile ~profile options sources in
    Pipeline.run ~input build
  in
  let reference = observe { Options.o4_pbo with Options.inline_limit = Some 0 } in
  Printf.printf "reference build: ret=%Ld, %d dynamic calls\n\n"
    reference.Vm.ret reference.Vm.calls;

  let check (o : Vm.outcome) =
    if o.Vm.calls <> reference.Vm.calls then Isolate.Bad o.Vm.calls
    else Isolate.Good
  in

  (* Dimension 2: binary search over the inline-operation limit. *)
  Printf.printf "searching over inline-operation limits (0..256)...\n";
  let compile ~limit =
    observe { Options.o4_pbo with Options.inline_limit = Some limit }
  in
  (match Isolate.isolate_operation_limit ~compile ~check ~max_limit:256 with
  | Some (n, calls) ->
    Printf.printf
      "--> inline operation #%d is the first that changes behaviour\n" n;
    Printf.printf "    (calls %d -> %d; a real debugging session would now\n"
      reference.Vm.calls calls;
    Printf.printf "     inspect that single inline's caller/callee pair)\n"
  | None -> print_endline "no inline operation changes the program");

  (* Module-set reduction, demonstrated on the synthetic predicate
     "modules X and Y are both present". *)
  Printf.printf "\nreducing a module set with a two-module interaction bug...\n";
  let guilty = (List.nth module_names 1, List.nth module_names 3) in
  let compile ~cmo_modules = cmo_modules in
  let check set =
    if List.mem (fst guilty) set && List.mem (snd guilty) set then
      Isolate.Bad ()
    else Isolate.Good
  in
  (match Isolate.isolate_modules ~compile ~check ~modules:module_names with
  | Some (reduced, ()) ->
    Printf.printf "--> reduced %d modules to: %s\n" (List.length module_names)
      (String.concat ", " reduced)
  | None -> print_endline "could not reproduce")
