(* A guided tour of the NAIM (not-all-in-memory) machinery of the
   paper's section 4: pools moving between expanded, compacted and
   offloaded states under the loader's thresholds, with the memory
   accountant watching.

     dune exec examples/naim_tour.exe *)

module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Pipeline = Cmo_driver.Pipeline
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Size = Cmo_il.Size

let show_mem label mem =
  Printf.printf "%-42s %8.2f MB resident\n" label
    (float_of_int (Memstats.resident mem) /. 1024.0 /. 1024.0)

let () =
  (* A mid-sized program to push around. *)
  let cfg = Genprog.scale (Suite.find "gcc") 0.5 in
  let modules =
    Pipeline.frontend
      (List.map
         (fun (name, text) -> { Pipeline.name; text })
         (Genprog.generate cfg))
  in
  let lines =
    List.fold_left (fun acc m -> acc + Cmo_il.Ilmod.src_lines m) 0 modules
  in
  Printf.printf "program: %d modules, %d lines\n" (List.length modules) lines;
  Printf.printf "expanded IR would occupy %.2f KB per source line\n\n"
    (float_of_int
       (List.fold_left (fun acc m -> acc + Size.module_expanded_bytes m) 0 modules)
    /. float_of_int lines /. 1024.0);

  (* A 4 MB "machine": thresholds engage almost immediately. *)
  let mem = Memstats.create () in
  let loader =
    Loader.create
      { Loader.default_config with Loader.machine_memory = 4 * 1024 * 1024 }
      mem
  in
  List.iter (Loader.register_module loader) modules;
  show_mem "after registering all modules" mem;
  Printf.printf "loader level now: %s\n\n"
    (match Loader.level loader with
    | Loader.Off -> "Off"
    | Loader.Ir_compaction -> "IR compaction"
    | Loader.St_compaction -> "IR + symbol-table compaction"
    | Loader.Offloading -> "IR + symbol tables + disk offloading");

  (* Touch every routine, as an optimizer pass would. *)
  List.iter
    (fun name -> Loader.with_func loader name (fun _f -> ()))
    (Loader.func_names loader);
  show_mem "after touching every routine once" mem;

  (* Ask the loader to drop everything it can. *)
  Loader.unload_all loader;
  show_mem "after unload_all" mem;

  let s = Loader.stats loader in
  Printf.printf
    "\nloader traffic: %d acquires (%d cache hits), %d compactions,\n\
    \                %d uncompactions, %d disk loads, %d offloads,\n\
    \                %d symbol tables compacted\n"
    s.Loader.acquires s.Loader.cache_hits s.Loader.compactions
    s.Loader.uncompactions s.Loader.repo_loads s.Loader.offloads
    s.Loader.symtab_compactions;

  (* Everything still decodes correctly after all that movement. *)
  let survivors =
    List.for_all
      (fun name ->
        Loader.with_func loader name (fun f -> f.Cmo_il.Func.name = name))
      (Loader.func_names loader)
  in
  Printf.printf "\nall %d routines load back intact: %b\n"
    (List.length (Loader.func_names loader))
    survivors;
  Loader.close loader
