examples/make_workflow.mli:
