examples/make_workflow.ml: Array Cmo_driver Cmo_vm Filename List Printf String Sys
