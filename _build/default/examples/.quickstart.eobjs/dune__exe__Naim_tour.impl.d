examples/naim_tour.ml: Cmo_driver Cmo_il Cmo_naim Cmo_workload List Printf
