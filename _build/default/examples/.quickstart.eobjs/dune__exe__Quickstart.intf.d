examples/quickstart.mli:
