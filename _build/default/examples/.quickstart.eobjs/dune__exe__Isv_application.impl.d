examples/isv_application.ml: Cmo_driver Cmo_vm Cmo_workload List Printf Sys
