examples/paper_tour.ml: Cmo_driver Cmo_link Cmo_naim Cmo_vm Cmo_workload Filename List Printf Sys
