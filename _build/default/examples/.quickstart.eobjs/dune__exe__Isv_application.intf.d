examples/isv_application.mli:
