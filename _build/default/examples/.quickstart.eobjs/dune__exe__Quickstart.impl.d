examples/quickstart.ml: Cmo_driver Cmo_vm Format Printf
