examples/debug_miscompile.ml: Cmo_driver Cmo_vm Cmo_workload List Printf String
