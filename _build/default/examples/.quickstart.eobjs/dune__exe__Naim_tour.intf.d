examples/naim_tour.mli:
