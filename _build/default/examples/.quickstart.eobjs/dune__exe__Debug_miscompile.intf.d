examples/debug_miscompile.mli:
