(* The ISV-application workflow of the paper's section 5: a large
   application with a small hot kernel, where profile-driven
   selectivity buys (nearly) the full CMO win at a fraction of the
   CMO compile effort.

     dune exec examples/isv_application.exe *)

module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Vm = Cmo_vm.Vm

let () =
  (* An MCAD-like application, scaled down to keep this example
     snappy (~60 modules). *)
  let cfg = Genprog.scale (Suite.find "mcad1") 0.28 in
  let sources =
    List.map
      (fun (name, text) -> { Pipeline.name; text })
      (Genprog.generate cfg)
  in
  Printf.printf "application: %d modules, %d source lines\n"
    (List.length sources)
    (Genprog.source_lines (Genprog.generate cfg));

  (* Train on the training data set. *)
  let profile = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let input = Genprog.reference_input cfg in

  (* The PBO-only build is the baseline ISVs would ship without CMO. *)
  let pbo_build = Pipeline.compile ~profile Options.o2_pbo sources in
  let pbo = Pipeline.run ~input pbo_build in
  Printf.printf "\n+O2 +P (no CMO):      %9d cycles\n" pbo.Vm.cycles;

  (* Sweep the selectivity parameter, as in Figure 6. *)
  Printf.printf "\n%-10s %12s %12s %14s %12s\n" "select %" "CMO lines"
    "compile s" "cycles" "vs PBO";
  List.iter
    (fun percent ->
      let t0 = Sys.time () in
      let build =
        Pipeline.compile ~profile (Options.o4_pbo_selective percent) sources
      in
      let dt = Sys.time () -. t0 in
      let o = Pipeline.run ~input build in
      assert (o.Vm.ret = pbo.Vm.ret);
      Printf.printf "%-10.1f %12d %12.3f %14d %11.2fx\n%!" percent
        build.Pipeline.report.Pipeline.cmo_lines dt o.Vm.cycles
        (float_of_int pbo.Vm.cycles /. float_of_int o.Vm.cycles))
    [ 1.0; 5.0; 10.0; 25.0; 100.0 ];
  print_newline ();
  print_endline
    "The run-time curve flattens once the hot fraction of the code is";
  print_endline
    "inside the CMO set (the paper's Mcad1 peaked at ~20% of the code,";
  print_endline "~5% of the call sites), while compile time keeps growing."
