(* Quickstart: compile a three-module MiniC program at the default
   level and with cross-module + profile-based optimization, run both
   on the simulated machine, and compare.

     dune exec examples/quickstart.exe *)

module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Vm = Cmo_vm.Vm

(* Three separately-compiled modules: the hot math kernel lives behind
   a module boundary, which is exactly what defeats an intraprocedural
   (+O2) optimizer and what CMO exists for. *)
let sources =
  [
    {
      Pipeline.name = "app";
      text =
        {|
        func main() {
          var n = arg(0);
          if (n <= 0) { n = 5000; }
          var total = 0;
          var i = 0;
          while (i < n) {
            total = (total + weigh(i, total)) & 1048575;
            i = i + 1;
          }
          report(total);
          return total;
        }
        |};
    };
    {
      Pipeline.name = "kernel";
      text =
        {|
        static global coef[4] = {3, 5, 7, 11};
        func weigh(x, acc) {
          var s = acc & 65535;
          var k = 0;
          while (k < 4) {
            s = s + coef[k] * bump(x + k);
            k = k + 1;
          }
          return s;
        }
        static func bump(v) { return v * 2 + 1; }
        |};
    };
    {
      Pipeline.name = "io";
      text = "func report(v) { print(v); return 0; }";
    };
  ]

let () =
  (* 1. Train: build instrumented (+I), run a training input, collect
     the profile database. *)
  let profile = Pipeline.train ~inputs:[ [| 1000L |] ] sources in

  (* 2. Compile at the default level and at +O4 +P. *)
  let baseline = Pipeline.compile Options.o2 sources in
  let optimized = Pipeline.compile ~profile Options.o4_pbo sources in

  (* 3. Run both on the reference input. *)
  let input = [| 5000L |] in
  let slow = Pipeline.run ~input baseline in
  let fast = Pipeline.run ~input optimized in

  assert (slow.Vm.ret = fast.Vm.ret);
  assert (slow.Vm.output = fast.Vm.output);
  Printf.printf "result:          %Ld (identical at both levels)\n" fast.Vm.ret;
  Printf.printf "+O2 cycles:      %d  (%d dynamic calls)\n" slow.Vm.cycles
    slow.Vm.calls;
  Printf.printf "+O4 +P cycles:   %d  (%d dynamic calls)\n" fast.Vm.cycles
    fast.Vm.calls;
  Printf.printf "speedup:         %.2fx\n"
    (float_of_int slow.Vm.cycles /. float_of_int fast.Vm.cycles);
  Format.printf "@.compilation report:@.%a@." Pipeline.pp_report
    optimized.Pipeline.report
