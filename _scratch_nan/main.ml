module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
let mk w counts =
  let db = Db.create () in
  List.iteri (fun i c -> Db.add db (Db.Fentry (Printf.sprintf "f%d" i)) c) counts;
  { Ingest.meta = { Ingest.source_fp = "fp"; sample_rate = 1.0; weight = w; age = 0 }; db }
let () =
  let policy = Ingest.default_policy ~current_fp:"fp" in
  let honest = [ mk 1.0 [10.;20.;30.]; mk 1.0 [11.;19.;31.]; mk 1.0 [9.;21.;29.] ] in
  (* NaN trust weight *)
  let db, _ = Ingest.ingest ~policy (mk Float.nan [5.;5.;5.] :: honest) in
  Printf.printf "nan-weight merged total: %f\n" (Db.total db);
  (* +inf trust weight *)
  let db2, _ = Ingest.ingest ~policy (mk Float.infinity [5.;5.;5.] :: honest) in
  Printf.printf "inf-weight merged total: %f\n" (Db.total db2);
  (* negative counts bypass the clamp *)
  let db3, _ = Ingest.ingest ~policy (mk 1.0 [-1e9; -1e9; -1e9] :: honest) in
  Printf.printf "neg-count merged total: %f\n" (Db.total db3)
